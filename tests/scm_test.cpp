// Tests of software-assisted conflict management (Ch. 4, Algorithm 3).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "locks/mcs_lock.hpp"
#include "locks/scm.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {
namespace {

using tsx::Ctx;

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

TEST(Scm, UncontendedCommitsSpeculatively) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> data(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const auto r = scm_region(ctx, main, aux, ScmParams{}, [&] {
      data.store(ctx, data.load(ctx) + 1);
    });
    EXPECT_TRUE(r.speculative);
    EXPECT_EQ(r.attempts, 1);
  });
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 1u);
}

TEST(Scm, NonConflictingThreadsAllSpeculative) {
  TtasLock main;
  McsLock aux;
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> slots(8);
  int nonspec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int i = 0; i < 8; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 60; ++k) {
        const auto r = scm_region(ctx, main, aux, ScmParams{}, [&] {
          slots[i].value.store(ctx, slots[i].value.load(ctx) + 1);
        });
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(nonspec, 0);
  for (auto& s : slots) EXPECT_EQ(s.value.unsafe_get(), 60u);
}

TEST(Scm, ConflictingThreadsProgressWithoutTakingMainLock) {
  // The livelock-prevention argument of Ch. 4: repeatedly conflicting
  // threads serialize on the auxiliary lock and keep committing
  // speculatively; the main lock is (almost) never taken.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  std::uint64_t ops = 0, nonspec = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 8, kIters = 150;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        const auto r = scm_region(ctx, main, aux, ScmParams{}, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
        ++ops;
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), kThreads * kIters);  // no lost updates
  EXPECT_EQ(ops, static_cast<std::uint64_t>(kThreads) * kIters);
  // Virtually everything completes speculatively through the aux-lock path.
  EXPECT_LT(static_cast<double>(nonspec) / static_cast<double>(ops), 0.05);
}

TEST(Scm, HopelessAbortShortCircuitsToMainLock) {
  // Regression: a capacity abort's status lacks the RETRY bit — retrying
  // can never succeed. scm_region used to serialize max_retries hopeless
  // re-executions on the aux lock anyway; now it must go straight to the
  // main lock after the first failure.
  TtasLock main;
  McsLock aux;
  constexpr std::size_t kLines = 600;  // > 512: always capacity-aborts
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> big(kLines);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ScmParams p;
    p.max_retries = 3;
    const auto r = scm_region(ctx, main, aux, p, [&] {
      for (auto& b : big) b.value.store(ctx, b.value.load(ctx) + 1);
    });
    EXPECT_FALSE(r.speculative);
    EXPECT_EQ(r.last_abort, tsx::AbortCause::kCapacity);
    // Exactly 1 speculative attempt + 1 non-speculative completion: no
    // doomed retries, no aux-lock episode.
    EXPECT_EQ(r.attempts, 2);
  });
  sched.run();
  for (auto& b : big) EXPECT_EQ(b.value.unsafe_get(), 1u);
}

TEST(Scm, GivesUpAndTakesMainLockAfterMaxRetries) {
  // Retryable (conflict) aborts still go through the full aux-lock episode:
  // a disturber thread keeps writing the hot line non-transactionally, so
  // every speculative re-execution conflict-aborts (with RETRY set), and the
  // aux holder must fall back to the main lock after max_retries failures.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  bool done = false;  // host-side: invisible to conflict detection
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    while (!done) hot.store(ctx, hot.load(ctx) + 1);
  });
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ScmParams p;
    p.max_retries = 3;
    const auto r = scm_region(ctx, main, aux, p, [&] {
      // Long window: several re-reads of the contended line make a commit
      // between two disturber stores impossible.
      for (int i = 0; i < 20; ++i) {
        hot.store(ctx, hot.load(ctx) + 1);
      }
    });
    done = true;
    EXPECT_FALSE(r.speculative);
    EXPECT_EQ(r.last_abort, tsx::AbortCause::kConflict);
    // 1 initial + 3 aux-serialized retries + 1 non-speculative completion.
    EXPECT_EQ(r.attempts, 5);
  });
  sched.run();
  EXPECT_GE(hot.unsafe_get(), 20u);
}

TEST(Scm, AuxiliaryLockReleasedAfterEpisode) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  // Two conflicting threads, then verify the aux lock ends free.
  for (int t = 0; t < 2; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 50; ++k) {
        scm_region(ctx, main, aux, ScmParams{}, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
      }
    });
  }
  sched.run();
  sim::Scheduler sched2(quiet_machine());
  tsx::Engine eng2(sched2, quiet_tsx());
  bool aux_free = false;
  sched2.spawn([&](sim::SimThread& st) {
    auto& ctx = eng2.context(st);
    aux_free = !aux.is_held(ctx);
  });
  sched2.run();
  EXPECT_TRUE(aux_free);
}

TEST(Scm, SpeculatorsUnaffectedByConflictingGroup) {
  // The essence of SCM: threads 0-1 conflict on `hot`; threads 2-5 work on
  // disjoint data. The conflicting pair must not disturb the others — no
  // avalanche, everyone else stays fully speculative.
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  std::vector<support::CacheAligned<tsx::Shared<std::uint64_t>>> slots(6);
  std::vector<std::uint64_t> nonspec(6, 0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int i = 0; i < 6; ++i) {
    sched.spawn([&, i](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 100; ++k) {
        const auto r = scm_region(ctx, main, aux, ScmParams{}, [&] {
          if (i < 2) {
            hot.store(ctx, hot.load(ctx) + 1);
          } else {
            slots[i].value.store(ctx, slots[i].value.load(ctx) + 1);
          }
        });
        if (!r.speculative) ++nonspec[i];
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 200u);
  for (int i = 2; i < 6; ++i) {
    EXPECT_EQ(slots[i].value.unsafe_get(), 100u);
    EXPECT_EQ(nonspec[i], 0u) << "disjoint thread " << i << " serialized";
  }
}

TEST(Scm, NestedHleVariantPreservesIllusion) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> data(0);
  tsx::TsxConfig cfg = quiet_tsx();
  cfg.allow_hle_in_rtm = true;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, cfg);
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    ScmParams p;
    p.nested_hle = true;
    const auto r = scm_region(ctx, main, aux, p, [&] {
      // Inside the critical section the main lock must appear held, exactly
      // like native HLE ("one can plug our scheme into a legacy lock-based
      // application").
      EXPECT_TRUE(main.is_held(ctx));
      data.store(ctx, 42);
    });
    EXPECT_TRUE(r.speculative);
  });
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 42u);
}

TEST(Scm, NestedHleVariantUnderConflicts) {
  TtasLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  tsx::TsxConfig cfg = quiet_tsx();
  cfg.allow_hle_in_rtm = true;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, cfg);
  constexpr int kThreads = 6, kIters = 100;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      ScmParams p;
      p.nested_hle = true;
      for (int k = 0; k < kIters; ++k) {
        scm_region(ctx, main, aux, p, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), kThreads * kIters);
}

TEST(Scm, WorksWithMcsMainLock) {
  McsLock main;
  McsLock aux;
  tsx::Shared<std::uint64_t> hot(0);
  std::uint64_t nonspec = 0, ops = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 8; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 100; ++k) {
        const auto r = scm_region(ctx, main, aux, ScmParams{}, [&] {
          hot.store(ctx, hot.load(ctx) + 1);
        });
        ++ops;
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(hot.unsafe_get(), 800u);
  // SCM rescues the fair lock: overwhelmingly speculative despite conflicts.
  EXPECT_LT(static_cast<double>(nonspec) / static_cast<double>(ops), 0.05);
}

TEST(Scheme, RunnerDispatchesAllSchemes) {
  for (const Scheme s : kAllSixSchemes) {
    TtasLock main;
    CriticalSection<TtasLock> cs(ElisionPolicy::from_scheme(s), main);
    tsx::Shared<std::uint64_t> counter(0);
    sim::Scheduler sched(quiet_machine());
    tsx::Engine eng(sched, quiet_tsx());
    for (int t = 0; t < 4; ++t) {
      sched.spawn([&](sim::SimThread& st) {
        auto& ctx = eng.context(st);
        for (int k = 0; k < 50; ++k) {
          cs.run(ctx, [&] {
            counter.store(ctx, counter.load(ctx) + 1);
          });
        }
      });
    }
    sched.run();
    EXPECT_EQ(counter.unsafe_get(), 200u) << scheme_name(s);
  }
}

}  // namespace
}  // namespace elision::locks
