// Differential tests of the per-access fast paths (docs/simulator.md): the
// engine's owned-line cache and the scheduler's switch-bound batching are
// host-speed optimizations that must never change simulated results. Every
// workload here runs twice — fast paths on and off — and the two runs must
// agree on every virtual-time observable: ops, attempts, elapsed cycles,
// transaction counters per abort cause, and the final simulated memory
// image. Shapes cover 1..256 simulated threads (both sides of the ready
// queue's 16->17 group boundary) and both yield-slack regimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/abort.hpp"

namespace elision::harness {
namespace {

struct ShapeRun {
  RunStats stats;
  std::vector<std::uint64_t> words;  // final simulated memory image
};

// An RB-tree-shaped access pattern in miniature: a handful of strided loads
// (re-reading the first line, so the owned-read tier gets hits) followed by
// a store, under a TTAS lock elided with HLE+SCM so the run produces real
// commits, aborts and lemming-effect episodes to compare.
//
// `words` is caller-owned and shared by the on/off runs of a pair: line ids
// are real addresses >> 6, so the two runs must simulate the *same* array
// or heap-placement differences (L1 set mapping, line sharing) would
// diverge them for reasons that have nothing to do with the fast paths.
ShapeRun run_shape(std::vector<std::uint64_t>& words, int threads,
                   std::uint64_t slack, bool fast) {
  BenchConfig cfg;
  cfg.threads = threads;
  cfg.duration_sec = 0.0002;
  cfg.machine.n_cores = 8;
  cfg.machine.smt_per_core = 2;
  cfg.machine.yield_slack_cycles = slack;
  cfg.machine.seed = 7;
  cfg.machine.batch_switch_bound = fast;
  cfg.tsx.owned_line_fastpath = fast;

  locks::TtasLock lock;
  locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::hle_scm(),
                                             lock);
  std::fill(words.begin(), words.end(), 0);
  ShapeRun out;
  out.stats = run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::size_t base = rng.next_below(words.size());
    return cs.run(ctx, [&] {
      auto& eng = ctx.engine();
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < 6; ++i) {
        std::size_t idx = base + i * 17;
        while (idx >= words.size()) idx -= words.size();
        sum += eng.load(ctx, &words[idx]);
      }
      sum += eng.load(ctx, &words[base]);  // repeat access: owned-read hit
      eng.store(ctx, &words[base], sum + 1);
    });
  });
  out.words = words;
  return out;
}

void expect_identical(const ShapeRun& on, const ShapeRun& off,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(on.stats.ops, off.stats.ops);
  EXPECT_EQ(on.stats.spec_ops, off.stats.spec_ops);
  EXPECT_EQ(on.stats.nonspec_ops, off.stats.nonspec_ops);
  EXPECT_EQ(on.stats.attempts, off.stats.attempts);
  EXPECT_EQ(on.stats.elapsed_cycles, off.stats.elapsed_cycles);
  EXPECT_EQ(on.stats.tx.begins, off.stats.tx.begins);
  EXPECT_EQ(on.stats.tx.commits, off.stats.tx.commits);
  EXPECT_EQ(on.stats.tx.aborts, off.stats.tx.aborts);
  for (int c = 0; c < static_cast<int>(tsx::AbortCause::kCauseCount); ++c) {
    EXPECT_EQ(on.stats.tx.aborts_by_cause[c], off.stats.tx.aborts_by_cause[c])
        << "cause " << to_string(static_cast<tsx::AbortCause>(c));
  }
  EXPECT_EQ(on.words, off.words) << "final memory image diverged";
}

TEST(FastPathDifferential, IdenticalSimulationAcrossSizesAndSlack) {
  std::vector<std::uint64_t> words(512);
  for (const int threads : {1, 2, 16, 17, 64, 256}) {
    for (const std::uint64_t slack : {std::uint64_t{0}, std::uint64_t{200}}) {
      const ShapeRun on = run_shape(words, threads, slack, true);
      const ShapeRun off = run_shape(words, threads, slack, false);
      const std::string what =
          "threads=" + std::to_string(threads) +
          " slack=" + std::to_string(slack);
      expect_identical(on, off, what.c_str());

      // The runs must have simulated something worth comparing.
      EXPECT_GT(on.stats.ops, 0u) << what;
      EXPECT_GT(on.stats.tx.begins, 0u) << what;

      // Fast-path telemetry: engaged paths count, disabled paths stay zero
      // (the counters are how check.sh's A/B run proves which mode ran).
      EXPECT_EQ(off.stats.tx.fp_owned_hits, 0u) << what;
      EXPECT_EQ(off.stats.tx.fp_probe_skips, 0u) << what;
      EXPECT_EQ(off.stats.fp_bound_recomputes, 0u) << what;
      if (on.stats.tx.commits > 0) {
        EXPECT_GT(on.stats.tx.fp_owned_hits, 0u) << what;
      }
      if (threads > 1) {
        EXPECT_GT(on.stats.fp_bound_recomputes, 0u) << what;
      }
    }
  }
}

// The validation gate in front of every run: degenerate machine shapes must
// exit(2) with a diagnostic instead of constructing a broken simulation
// (satellite of the fast-path PR because the t128/t256 points made the
// shape-override path load-bearing).
using FastPathDeath = ::testing::Test;

TEST(FastPathDeath, RejectsDegenerateMachineShapes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto run = [](int threads, unsigned cores, unsigned smt) {
    BenchConfig cfg;
    cfg.threads = threads;
    cfg.machine.n_cores = cores;
    cfg.machine.smt_per_core = smt;
    validate_bench_config(cfg);
  };
  EXPECT_EXIT(run(0, 4, 2), ::testing::ExitedWithCode(2), "threads");
  EXPECT_EXIT(run(257, 4, 2), ::testing::ExitedWithCode(2), "threads");
  EXPECT_EXIT(run(8, 0, 2), ::testing::ExitedWithCode(2), "n_cores");
  EXPECT_EXIT(run(8, 4, 0), ::testing::ExitedWithCode(2), "smt_per_core");
  run(256, 128, 2);  // the t256 point's shape is valid
}

}  // namespace
}  // namespace elision::harness
