// The paper's red-black-tree benchmark as library code: a global-lock-
// protected tree, random insert/delete/lookup mix, fixed virtual duration,
// parameterised over (lock, scheme, size, mix, threads). Historically this
// lived in bench/bench_common.hpp and every figure binary re-instantiated
// it; it moved into the harness so the bench-suite driver, the figure
// benches and tests all run the exact same point definitions.
#pragma once

#include <cstddef>
#include <cstdint>

#include "harness/runner.hpp"

namespace elision::harness {

enum class LockSel { kTtas, kMcs, kTicketAdj, kClhAdj, kTicket, kClh };

const char* lock_sel_name(LockSel s);

struct RbPoint {
  std::size_t size = 128;
  int update_pct = 20;  // split evenly between inserts and deletes
  int threads = 8;
  // Accepts a bare locks::Scheme (implicit conversion) or a tuned policy.
  locks::ElisionPolicy scheme = locks::ElisionPolicy::standard();
  LockSel lock = LockSel::kTtas;
  double duration_sec = 0.003;
  // Collect an event trace and derive avalanche/rejoin statistics.
  bool telemetry = false;
  tsx::AvalancheConfig avalanche;
  // Runs averaged per point (different machine seeds). Avalanche latching
  // is bistable at short windows, so single runs have high variance.
  int seeds = 2;
  bool hardware_extension = false;
  std::uint64_t timeline_slot_cycles = 0;
  std::uint64_t seed = 42;

  // Machine-shape overrides for big-machine scaling points; 0 keeps the
  // MachineConfig default (the paper's 4-core / 2-SMT i7). The suite emits
  // these into results JSON only when set, so historical baseline lines are
  // byte-identical.
  unsigned n_cores = 0;
  unsigned smt_per_core = 0;
  std::uint64_t yield_slack_cycles = 0;
  // kMicro suite points only (the suite stores their shape in an RbPoint):
  // fixed op count per thread and shared-line period overrides, 0 = the
  // MicroPoint defaults.
  std::uint64_t micro_ops = 0;
  std::uint64_t micro_shared_period = 0;

  // Host threads the multi-seed fan-out may use (support/parallel.hpp).
  // Each seed is an independent simulation; results are merged in seed
  // order, so any value produces byte-identical RunStats to host_threads=1
  // — only host wall time changes. Never affects a point with seeds <= 1.
  int host_threads = 1;

  // Out-param: fraction of TTAS lock arrivals that found the lock held
  // (the boxed series of Fig 3.1). Only filled for LockSel::kTtas.
  double* arrival_held_frac = nullptr;
};

// Builds the tree (random keys from a domain of 2*size, as in Ch. 3) and
// runs the benchmark for the configured virtual duration, once.
RunStats run_rb_point_once(const RbPoint& p);

// Accumulates `p.seeds` independent runs (the paper averages 10 three-second
// runs per point). Every RunStats field is merged, including per-slot
// timelines.
RunStats run_rb_point(const RbPoint& p);

// The paper's tree-size sweep (Fig 3.1/3.4/5.2 x-axis).
inline const std::size_t kTreeSizes[] = {2,    8,    32,   128,   512,
                                         2048, 8192, 32768, 131072, 524288};

// A faster subset for the benches that run many (scheme x lock) combos.
inline const std::size_t kTreeSizesSmall[] = {2, 8, 32, 128, 512, 2048, 8192,
                                              32768};

struct Mix {
  const char* name;
  int update_pct;
};
inline const Mix kMixes[] = {
    {"lookups-only", 0},
    {"10i-10d-80l", 20},
    {"50i-50d", 100},
};

}  // namespace elision::harness
