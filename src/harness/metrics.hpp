// Metrics registry: aggregates per-(scheme, lock) benchmark series —
// attempts-per-region histograms, the abort-cause matrix, SCM time-to-rejoin
// histograms and avalanche-episode summaries — and exports them as JSON or
// CSV. This is the shared vocabulary benches and tests use to assert on
// *behaviour* (how critical sections completed) rather than throughput
// alone.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "tsx/stats.hpp"
#include "tsx/telemetry.hpp"

namespace elision::harness {

struct RunStats;

namespace detail {

// Counters fed per completed region can legitimately approach 2^64 on long
// simulated runs; a silent wrap would corrupt every derived mean. Debug
// builds treat overflow as a bug; release builds pin at UINT64_MAX.
inline std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  ELISION_DCHECK(s >= a);
  return s >= a ? s : UINT64_MAX;
}

}  // namespace detail

// Power-of-two-bucketed histogram. Bucket index is std::bit_width(v):
// bucket 0 holds {0}, bucket 1 holds {1}, bucket 2 holds {2,3}, bucket 3
// holds {4..7}, and so on. Cheap enough to update per completed region.
class Histogram {
 public:
  void add(std::uint64_t v) {
    const auto b = static_cast<std::size_t>(std::bit_width(v));
    if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
    ++buckets_[b];
    ++samples_;
    sum_ = detail::saturating_add(sum_, v);
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) {
    if (buckets_.size() < o.buckets_.size()) {
      buckets_.resize(o.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
      buckets_[i] += o.buckets_[i];
    }
    samples_ += o.samples_;
    sum_ = detail::saturating_add(sum_, o.sum_);
    if (o.max_ > max_) max_ = o.max_;
  }

  std::uint64_t samples() const { return samples_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return samples_ > 0 ? static_cast<double>(sum_) /
                              static_cast<double>(samples_)
                        : 0.0;
  }

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  // Inclusive value range of bucket i: [lo, hi]. Bucket 64 (samples with
  // the top bit set, e.g. add(UINT64_MAX)) saturates at UINT64_MAX — the
  // unclamped shift by 64 would be UB.
  static std::uint64_t bucket_lo(std::size_t i) {
    if (i < 2) return i;
    if (i > 64) return UINT64_MAX;
    return std::uint64_t{1} << (i - 1);
  }
  static std::uint64_t bucket_hi(std::size_t i) {
    if (i < 2) return i;
    if (i >= 64) return UINT64_MAX;
    return (std::uint64_t{1} << i) - 1;
  }
  // "0", "1", "2-3", "4-7", ...
  static std::string bucket_label(std::size_t i);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t samples_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// Log-linear (HDR-style) histogram for latency quantiles. `Histogram`'s
// power-of-two buckets are far too coarse for p999 — one bucket spans a 2x
// range. Here values below 64 get an exact bucket each, and every octave
// above is split into 32 linear sub-buckets, bounding the relative error of
// any reported quantile at 1/32 (~3.1%) while staying a handful of KiB.
//
// All counters are integers and quantiles return a bucket's inclusive upper
// bound (a uint64), so merged results — and any JSON printed from them —
// are bit-reproducible regardless of merge grouping.
class QuantileHistogram {
 public:
  static constexpr std::size_t kExact = 64;    // buckets 0..63 hold v == i
  static constexpr std::size_t kSubBits = 5;   // 32 sub-buckets per octave
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kExact) return static_cast<std::size_t>(v);
    const auto b = static_cast<std::size_t>(std::bit_width(v));  // >= 7
    const auto sub = static_cast<std::size_t>(
        (v - (std::uint64_t{1} << (b - 1))) >> (b - 1 - kSubBits));
    return kExact + (b - 7) * kSub + sub;
  }

  // Inclusive value range [lo, hi] of bucket i.
  static std::uint64_t bucket_lo(std::size_t i) {
    if (i < kExact) return i;
    const std::size_t octave = (i - kExact) / kSub;
    const std::size_t sub = (i - kExact) % kSub;
    const std::uint64_t width = std::uint64_t{1} << (octave + 1);
    return (std::uint64_t{1} << (octave + 6)) + sub * width;
  }
  static std::uint64_t bucket_hi(std::size_t i) {
    if (i < kExact) return i;
    const std::size_t octave = (i - kExact) / kSub;
    return bucket_lo(i) + (std::uint64_t{1} << (octave + 1)) - 1;
  }

  void add(std::uint64_t v) {
    const std::size_t i = bucket_index(v);
    if (buckets_.size() <= i) buckets_.resize(i + 1, 0);
    ++buckets_[i];
    ++samples_;
    sum_ = detail::saturating_add(sum_, v);
    if (v > max_) max_ = v;
  }

  void merge(const QuantileHistogram& o) {
    if (buckets_.size() < o.buckets_.size()) {
      buckets_.resize(o.buckets_.size(), 0);
    }
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
      buckets_[i] += o.buckets_[i];
    }
    samples_ += o.samples_;
    sum_ = detail::saturating_add(sum_, o.sum_);
    if (o.max_ > max_) max_ = o.max_;
  }

  // Value at quantile q in [0,1]: the inclusive upper bound of the bucket
  // holding the ceil(q * samples)-th smallest sample (rank clamped to
  // [1, samples]). Exact for values < 64; within 1/32 above. Returns 0 when
  // empty.
  std::uint64_t quantile(double q) const {
    if (samples_ == 0) return 0;
    double want = q * static_cast<double>(samples_);
    std::uint64_t rank = static_cast<std::uint64_t>(want);
    if (static_cast<double>(rank) < want) ++rank;  // ceil
    if (rank < 1) rank = 1;
    if (rank > samples_) rank = samples_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= rank) return bucket_hi(i) < max_ ? bucket_hi(i) : max_;
    }
    return max_;
  }

  std::uint64_t samples() const { return samples_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return samples_ > 0 ? static_cast<double>(sum_) /
                              static_cast<double>(samples_)
                        : 0.0;
  }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t samples_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// Aggregated behaviour of one (scheme, lock) series across runs.
struct RegionMetrics {
  std::uint64_t runs = 0;
  std::uint64_t ops = 0;
  std::uint64_t spec_ops = 0;
  std::uint64_t nonspec_ops = 0;
  std::uint64_t attempts = 0;
  std::uint64_t elapsed_cycles = 0;
  // Taken from the first absorbed run's MachineConfig; all runs folded into
  // one series must agree (absorb checks) or throughput would be nonsense.
  double ghz = 3.4;
  tsx::TxStats tx;            // begins/commits + the abort-cause matrix row
  Histogram attempts_hist;    // attempts per completed region
  Histogram rejoin_hist;      // SCM aux-enter -> aux-exit latency (cycles)
  std::uint64_t avalanche_episodes = 0;
  std::uint64_t avalanche_victims = 0;
  std::uint64_t avalanche_cycles = 0;  // summed serialized duration
  int avalanche_max_victims = 0;

  void absorb(const RunStats& run);

  double seconds() const { return elapsed_cycles / (ghz * 1e9); }
  double throughput() const {
    return seconds() > 0 ? static_cast<double>(ops) / seconds() : 0.0;
  }
};

// Ordered collection of series, keyed by (scheme, lock). Insertion order is
// preserved in the exports so tables read in the order benches ran.
class MetricsRegistry {
 public:
  struct Entry {
    std::string scheme;
    std::string lock;
    RegionMetrics metrics;
  };

  RegionMetrics& series(const std::string& scheme, const std::string& lock);

  void record(const std::string& scheme, const std::string& lock,
              const RunStats& run) {
    series(scheme, lock).absorb(run);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  // {"series":[{"scheme":..., "lock":..., "aborts_by_cause":{...},
  //             "attempts_hist":{...}, "rejoin_cycles_hist":{...},
  //             "avalanche":{...}}, ...]}
  void export_json(std::FILE* out) const;
  // One row per series; histograms flattened to mean/max.
  void export_csv(std::FILE* out) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace elision::harness
