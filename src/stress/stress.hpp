// Schedule-exploration stress harness.
//
// The deterministic virtual-time simulator executes exactly one
// interleaving per seed, so a fixed-seed test suite explores a vanishingly
// small corner of the schedule space — and fallback-path bugs (the place
// HTM algorithms actually break) hide in the rest of it. This subsystem
// systematically perturbs schedules and checks invariants:
//
//  * perturbation — sim::PerturbConfig injects random extra delays at
//    shared-memory access points, driven by a dedicated per-run seed
//    (the workload's own random choices are untouched);
//  * invariants — mutual exclusion (at most one *non-speculative* thread
//    per lock's critical section), lost-update detection, data-structure
//    validation after every run, and a virtual-time starvation watchdog;
//  * sweeping — run_case() executes one (policy, lock, workload,
//    perturbation seed) cell; sweep() crosses policy x lock x workload x
//    seed; minimize_case() shrinks a failing seed's perturbation budget to
//    the smallest injection prefix that still reproduces the violation.
//
// Reproduce any reported failure with tools/stress_cli (see docs/stress.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "locks/policy.hpp"

namespace elision::stress {

// Locks under test. kSharedTtas/kSharedMcs are the two-mode family: the
// single-mode workloads drive them purely exclusively, the btree workload
// additionally exercises shared mode. kRacy and kGreedyShared are the
// self-test instruments (racy_lock.hpp, greedy_shared_lock.hpp): excluded
// from all_locks(), only valid with the standard (non-speculative) policy.
enum class LockKind {
  kTtas,
  kMcs,
  kTicket,
  kTicketAdj,
  kClh,
  kClhAdj,
  kSharedTtas,
  kSharedMcs,
  kRacy,
  kGreedyShared,
};

const char* lock_name(LockKind k);
std::vector<LockKind> all_locks();

enum class Workload {
  kCounter,    // one hot Shared counter; checks lost updates + mutex
  kHashTable,  // mixed insert/erase/lookup; checks structure + net size
  kBtree,      // B+tree mix; reads run shared on two-mode locks; checks
               // structure, net size, rw-mutex and role lockout
  kShardedKv,  // sharded KV service; single-shard + cross-shard
               // (multi_put/transfer) mix; checks per-shard structure and
               // the cross-shard value ledger (a torn multi-lock region
               // shows up as a lost update)
};

const char* workload_name(Workload w);
std::vector<Workload> all_workloads();

// Policies covered by "--schemes all": the paper's six evaluated schemes
// plus the RTM-based elision mechanism and the adaptive mode controller
// (with a short decision window so it migrates within a case), all in
// exclusive mode — the shared-mode axis is exercised per-operation by the
// btree workload, not by the policy grid (a `+shared` policy would run
// read-write bodies as readers, which is a usage error, not a lock bug).
std::vector<locks::ElisionPolicy> all_policies();

// Per-sweep knobs (shared by every case of a sweep).
struct StressOptions {
  int threads = 8;
  double duration_ms = 0.05;  // virtual milliseconds per run

  // Perturbation layer (sim::PerturbConfig; the per-case seed and budget
  // live in StressCase).
  double perturb_probability = 0.05;
  std::uint64_t perturb_max_delay_cycles = 2000;

  // Workload randomness (distinct from the perturbation seed: the sweep
  // varies schedules over a fixed workload).
  std::uint64_t workload_seed = 0x1234ABCDULL;

  // Starvation watchdog: flag a thread silent for gap_cycles of virtual
  // time while >= min_other_ops other completions went through.
  std::uint64_t starvation_gap_cycles = 400000;
  std::uint64_t starvation_min_other_ops = 50;

  // Deadlock valve: abort the simulation (loudly) after this many context
  // switches. 0 disables.
  std::uint64_t max_switches = 50000000;

  // Attach an abort-telemetry ring to each run and report episode counts
  // in the outcome (host-memory cost only; see docs/telemetry.md).
  bool telemetry = false;

  // Hash-table workload sizing.
  std::uint64_t hashtable_key_domain = 96;
  std::size_t hashtable_buckets = 32;
  std::size_t hashtable_capacity = 256;

  // B+tree workload: tree size (key domain is 2x), the update share of the
  // mix (split between inserts and erases), the share of reads that are
  // range scans, their length, and an optional in-section dwell for read
  // operations — virtual cycles of compute() inside the (shared) critical
  // section, used by the writer-starvation self-test to keep the reader
  // crowd overlapped.
  std::size_t btree_size = 96;
  int btree_update_pct = 20;
  int btree_scan_pct = 30;
  std::size_t btree_scan_len = 8;
  std::uint64_t btree_read_dwell_cycles = 0;

  // Sharded-KV workload sizing: few shards + a small key domain keep the
  // cross-shard regions (multi_put/transfer) genuinely conflicting.
  int kv_shards = 4;
  std::uint64_t kv_key_domain = 48;
  // 0: every thread rolls the update die per op. > 0: threads with id below
  // this are dedicated writers (update mix only) and the rest are pure
  // readers — the role split the lockout hazards need (a mixed-duty thread
  // that blocks as a writer stops reading, so the reader crowd self-drains
  // and a reader-barging bug can never starve writers for long).
  int btree_writer_threads = 0;
  // Virtual cycles an updater computes *outside* the critical section before
  // each update. Without it a dedicated writer re-announces intent the
  // moment it unlocks, and a writer-preference lock then (correctly, per its
  // documented unfairness) locks the readers out — the gap opens reader
  // windows so only a broken lock trips the lockout checker.
  std::uint64_t btree_writer_gap_cycles = 0;

  // Shrink failing seeds' perturbation budgets during sweep().
  bool minimize = true;

  // Host threads sweep() may fan independent cases out across
  // (support/parallel.hpp). Distinct from `threads`, which is the
  // *simulated* thread count of every case. Any value produces
  // byte-identical SweepStats (and on_run sequences) to host_threads=1:
  // outcomes are merged — and failures minimized — in grid order after all
  // cases ran. Failure minimization itself always runs serially (it
  // mutates the case's perturbation budget between dependent re-runs).
  int host_threads = 1;
};

// One cell of the sweep.
struct StressCase {
  locks::ElisionPolicy policy = locks::ElisionPolicy::hle();
  LockKind lock = LockKind::kTtas;
  Workload workload = Workload::kCounter;
  std::uint64_t perturb_seed = 0;
  // Perturbation budget (sim::PerturbConfig::max_points); 0 = unlimited.
  std::uint64_t perturb_points = 0;
};

std::string case_name(const StressCase& c);

struct RunOutcome {
  std::vector<std::string> violations;
  std::uint64_t ops = 0;
  std::uint64_t aborts = 0;
  std::uint64_t perturb_points_used = 0;
  std::uint64_t elapsed_cycles = 0;
  std::uint64_t avalanche_episodes = 0;  // only when telemetry is on
  bool ok() const { return violations.empty(); }
};

// Runs one case under the options' perturbation/invariant configuration.
RunOutcome run_case(const StressOptions& o, const StressCase& c);

// Greedy budget-halving repro shrinking: starting from the failing run's
// injection count, keep halving the budget while the violation still
// reproduces. Returns the smallest failing budget found (not guaranteed
// globally minimal — failures need not be monotone in the budget) and the
// outcome under it. If `c` does not fail at all, returns its passing
// outcome with points == c.perturb_points.
struct Minimized {
  std::uint64_t points = 0;
  RunOutcome outcome;
};
Minimized minimize_case(const StressOptions& o, StressCase c);

struct FailureReport {
  StressCase c;
  RunOutcome outcome;
  // Smallest failing perturbation budget (== outcome's budget when
  // minimization is off).
  std::uint64_t minimized_points = 0;
};

struct SweepStats {
  int runs = 0;
  // Summed over outcomes in grid order (and commutative anyway), so the
  // total is independent of which host thread completed which case when.
  std::uint64_t total_ops = 0;
  std::vector<FailureReport> failures;  // grid order
  bool ok() const { return failures.empty(); }
};

// Crosses policies x locks x workloads x perturbation seeds
// [first_seed, first_seed + n_seeds). Cases run on up to
// o.host_threads host threads (each case is an independent simulation);
// aggregation happens in grid order afterwards, so results and reporting
// are byte-identical across host-thread counts. `on_run`, if set, is
// called once per case in grid order during that aggregation phase —
// progress reporting, not a live completion callback.
SweepStats sweep(
    const StressOptions& o, const std::vector<locks::ElisionPolicy>& policies,
    const std::vector<LockKind>& locks,
    const std::vector<Workload>& workloads, std::uint64_t first_seed,
    int n_seeds,
    const std::function<void(const StressCase&, const RunOutcome&)>& on_run =
        {});

}  // namespace elision::stress
