// Virtual-time cost model (in CPU cycles).
//
// These are *effective serial* costs, not raw latencies: a real out-of-order
// core overlaps much of a cache miss or an XBEGIN with surrounding work
// (memory-level and instruction-level parallelism), so charging full
// documented latencies per access would overstate contention costs several
// fold and suppress the parallel scaling the paper measures (Fig 5.1). The
// values below are raw Haswell latencies discounted for that overlap; the
// experiments depend on their relative magnitudes (coherence transfers
// several times an L1 hit, aborts costing tens of accesses), which are
// preserved. See EXPERIMENTS.md "Calibration".
#pragma once

#include <cstdint>

namespace elision::sim {

struct CostModel {
  // Plain memory accesses, by where the simulated line currently lives.
  std::uint64_t l1_hit = 4;            // line valid in this thread's L1
  std::uint64_t llc_hit = 10;          // clean line from the shared L3
  std::uint64_t remote_transfer = 18;  // dirty line forwarded from a peer
  std::uint64_t rmw_extra = 12;        // extra for a locked RMW instruction

  // TSX operations (raw Haswell XBEGIN+XEND ~90 cycles, largely overlapped).
  std::uint64_t xbegin = 25;
  std::uint64_t xend = 20;
  std::uint64_t abort_penalty = 120;   // rollback + restart overhead

  // Busy-wait iteration with a PAUSE instruction.
  std::uint64_t pause = 30;

  // Per-access compute charged alongside each shared-memory access: the
  // comparisons, branches and address arithmetic between accesses.
  std::uint64_t access_compute = 6;
};

}  // namespace elision::sim
