// Minimal JSON support: a recursive-descent parser into an ordered DOM plus
// a string escaper. The bench-suite gate uses it to read its committed
// baseline and tests use it to round-trip the exporters' output, so it is
// deliberately tiny rather than general-purpose: objects preserve insertion
// order, numbers are doubles, input must be a single complete document (no
// trailing garbage).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace elision::support::json {

class Value;
struct Member;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  std::uint64_t as_u64(std::uint64_t fallback = 0) const {
    return is_number() && num_ >= 0 ? static_cast<std::uint64_t>(num_)
                                    : fallback;
  }
  const std::string& as_string() const { return str_; }

  // Array access.
  const std::vector<Value>& items() const { return arr_; }

  // Object access; members() preserves insertion order.
  const std::vector<Member>& members() const { return obj_; }
  // Null if absent or this is not an object.
  const Value* find(std::string_view key) const;

  std::size_t size() const {
    return is_array() ? arr_.size() : is_object() ? obj_.size() : 0;
  }

  // Builders (used by the parser; handy for tests).
  static Value of_bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static Value of_number(double d) {
    Value v;
    v.type_ = Type::kNumber;
    v.num_ = d;
    return v;
  }
  static Value of_string(std::string s) {
    Value v;
    v.type_ = Type::kString;
    v.str_ = std::move(s);
    return v;
  }
  static Value of_array(std::vector<Value> items) {
    Value v;
    v.type_ = Type::kArray;
    v.arr_ = std::move(items);
    return v;
  }
  static Value of_object(std::vector<Member> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<Member> obj_;
};

struct Member {
  std::string key;
  Value value;
};

inline Value Value::of_object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(members);
  return v;
}

inline const Value* Value::find(std::string_view key) const {
  for (const auto& m : obj_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

// Escapes a string for embedding between double quotes in JSON output.
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

namespace detail {

inline constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<std::uint32_t> parse_hex4() {
    if (pos + 4 > text.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    pos += 4;
    return v;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (true) {
      if (at_end()) return std::nullopt;
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return std::nullopt;
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          auto cp = parse_hex4();
          if (!cp) return std::nullopt;
          std::uint32_t code = *cp;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (!consume_literal("\\u")) return std::nullopt;
            auto lo = parse_hex4();
            if (!lo || *lo < 0xDC00 || *lo > 0xDFFF) return std::nullopt;
            code = 0x10000 + ((code - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return std::nullopt;  // lone low surrogate
          }
          append_utf8(out, code);
          break;
        }
        default: return std::nullopt;
      }
    }
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    while (!at_end() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                         peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    // strtod needs a terminated buffer; numbers are short.
    char buf[64];
    const std::size_t len = pos - start;
    if (len >= sizeof buf) return std::nullopt;
    std::memcpy(buf, text.data() + start, len);
    buf[len] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + len) return std::nullopt;
    return Value::of_number(v);
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (at_end()) return std::nullopt;
    const char c = peek();
    if (c == '{') {
      ++pos;
      std::vector<Member> members;
      skip_ws();
      if (consume('}')) return Value::of_object(std::move(members));
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        members.push_back({std::move(*key), std::move(*v)});
        if (consume(',')) continue;
        if (consume('}')) return Value::of_object(std::move(members));
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      std::vector<Value> items;
      skip_ws();
      if (consume(']')) return Value::of_array(std::move(items));
      while (true) {
        auto v = parse_value(depth + 1);
        if (!v) return std::nullopt;
        items.push_back(std::move(*v));
        if (consume(',')) continue;
        if (consume(']')) return Value::of_array(std::move(items));
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return Value::of_string(std::move(*s));
    }
    if (c == 't') {
      if (!consume_literal("true")) return std::nullopt;
      return Value::of_bool(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) return std::nullopt;
      return Value::of_bool(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) return std::nullopt;
      return Value();
    }
    return parse_number();
  }
};

}  // namespace detail

// Parses one complete JSON document; nullopt on any syntax error, including
// trailing non-whitespace.
inline std::optional<Value> parse(std::string_view text) {
  detail::Parser p{text};
  auto v = p.parse_value(0);
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

inline std::optional<Value> parse_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return std::nullopt;
  std::string data;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  std::fclose(f);
  return parse(data);
}

}  // namespace elision::support::json
