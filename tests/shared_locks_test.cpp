// Two-mode lock family tests: reader-writer mutual exclusion, reader
// concurrency, writer preference, elided-reader fast paths through
// CriticalSection::run_shared, SharedGuard abort rollback, and the
// reader-avalanche telemetry attribution the writer-heavy bench points rely
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "locks/schemes.hpp"
#include "locks/shared_guard.hpp"
#include "locks/ttas_lock.hpp"
#include "locks/shared_mcs_lock.hpp"
#include "locks/shared_ttas_lock.hpp"
#include "locks/shared_word.hpp"
#include "tsx/telemetry.hpp"

namespace elision::locks {
namespace {

sim::MachineConfig quiet_machine() {
  sim::MachineConfig m;
  m.n_cores = 8;
  m.smt_per_core = 1;
  return m;
}

tsx::TsxConfig quiet_tsx() {
  tsx::TsxConfig t;
  t.spurious_per_begin = 0;
  t.spurious_per_access = 0;
  return t;
}

static_assert(detail::kHasSharedMode<SharedTtasLock>);
static_assert(detail::kHasSharedMode<SharedMcsLock>);
static_assert(!detail::kHasSharedMode<TtasLock>);
static_assert(!detail::kHasSharedMode<McsLock>);

// ---------------------------------------------------------------------------
// Typed over both family members
// ---------------------------------------------------------------------------

template <typename Lock>
class SharedLockTest : public ::testing::Test {};

using BothSharedLocks = ::testing::Types<SharedTtasLock, SharedMcsLock>;
TYPED_TEST_SUITE(SharedLockTest, BothSharedLocks);

TYPED_TEST(SharedLockTest, WriterMutualExclusion) {
  TypeParam lock;
  tsx::Shared<std::uint64_t> counter(0);
  tsx::Shared<std::uint64_t> in_cs(0);
  bool violation = false;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kThreads = 6, kIters = 120;
  for (int t = 0; t < kThreads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        lock.lock(ctx);
        if (in_cs.load(ctx) != 0) violation = true;
        in_cs.store(ctx, 1);
        counter.store(ctx, counter.load(ctx) + 1);
        ctx.engine().compute(ctx, 20);
        in_cs.store(ctx, 0);
        lock.unlock(ctx);
      }
    });
  }
  sched.run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(counter.unsafe_get(), kThreads * kIters);
}

TYPED_TEST(SharedLockTest, ReadersRunConcurrently) {
  // Standard-mode readers must be able to hold the lock simultaneously.
  TypeParam lock;
  int active = 0, high_water = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 6; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      lock.lock_shared(ctx);
      ++active;
      // Dwell so the others arrive while we hold it.
      ctx.engine().compute(ctx, 5000);
      high_water = std::max(high_water, active);
      --active;
      lock.unlock_shared(ctx);
    });
  }
  sched.run();
  EXPECT_GE(high_water, 2);
}

TYPED_TEST(SharedLockTest, ReadersAndWriterNeverOverlap) {
  TypeParam lock;
  int readers_in = 0;
  int writers_in = 0;
  bool violation = false;
  tsx::Shared<std::uint64_t> data(0);
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  constexpr int kIters = 80;
  for (int t = 0; t < 6; ++t) {
    const bool writer = t < 2;
    sched.spawn([&, writer](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < kIters; ++k) {
        if (writer) {
          lock.lock(ctx);
          if (readers_in != 0 || writers_in != 0) violation = true;
          ++writers_in;
          data.store(ctx, data.load(ctx) + 1);
          ctx.engine().compute(ctx, 30);
          --writers_in;
          lock.unlock(ctx);
        } else {
          lock.lock_shared(ctx);
          if (writers_in != 0) violation = true;
          ++readers_in;
          data.load(ctx);
          ctx.engine().compute(ctx, 30);
          --readers_in;
          lock.unlock_shared(ctx);
        }
      }
    });
  }
  sched.run();
  EXPECT_FALSE(violation);
  EXPECT_EQ(data.unsafe_get(), 2u * kIters);
}

TYPED_TEST(SharedLockTest, SharedReleaseLeavesWordFree) {
  TypeParam lock;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    EXPECT_FALSE(lock.is_held(ctx));
    lock.lock_shared(ctx);
    EXPECT_TRUE(lock.is_held(ctx));
    EXPECT_FALSE(lock.is_write_locked(ctx));  // readers don't block readers
    lock.unlock_shared(ctx);
    EXPECT_FALSE(lock.is_held(ctx));
    lock.lock(ctx);
    EXPECT_TRUE(lock.is_write_locked(ctx));
    lock.unlock(ctx);
    EXPECT_FALSE(lock.is_held(ctx));
  });
  sched.run();
}

TYPED_TEST(SharedLockTest, SharedGuardRollsBackWithAbortedTransaction) {
  // An aborted transaction rolls the elided reader increment back; the
  // guard's destructor must not decrement what was never really added.
  TypeParam lock;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    const unsigned status = ctx.engine().run_transaction(ctx, [&] {
      SharedGuard<TypeParam> g(ctx, lock);
      EXPECT_TRUE(g.was_speculative());
      ctx.engine().xabort(ctx, 7);
    });
    EXPECT_NE(status, tsx::kCommitted);
    EXPECT_FALSE(lock.is_held(ctx));
    // The lock must still work both ways afterwards.
    lock.lock(ctx);
    lock.unlock(ctx);
    lock.lock_shared(ctx);
    lock.unlock_shared(ctx);
    EXPECT_FALSE(lock.is_held(ctx));
  });
  sched.run();
}

TYPED_TEST(SharedLockTest, RunSharedElidesUncontendedReaders) {
  // run_shared under an elision policy: uncontended readers complete
  // speculatively and the word never sees a real reader count.
  TypeParam lock;
  CriticalSection<TypeParam> cs(ElisionPolicy::hle().shared(), lock);
  tsx::Shared<std::uint64_t> data(42);
  int nonspec = 0;
  std::uint64_t sum = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 6; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 50; ++k) {
        const auto r = cs.run(ctx, [&] { sum += data.load(ctx); });
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run();
  EXPECT_EQ(nonspec, 0);
  EXPECT_EQ(sum, 42u * 6u * 50u);
  EXPECT_EQ(ElisionPolicy::hle().shared().mode, AccessMode::kShared);
}

TYPED_TEST(SharedLockTest, SharedFallbackReadersStillRunConcurrently) {
  // Under the standard scheme run_shared takes real reader counts — and
  // those must coexist, unlike exclusive fallbacks.
  TypeParam lock;
  CriticalSection<TypeParam> cs(ElisionPolicy::standard().shared(), lock);
  int active = 0, high_water = 0;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 6; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      cs.run(ctx, [&] {
        ++active;
        ctx.engine().compute(ctx, 5000);
        high_water = std::max(high_water, active);
        --active;
      });
    });
  }
  sched.run();
  EXPECT_GE(high_water, 2);
}

TYPED_TEST(SharedLockTest, MixedSharedAndExclusiveKeepInvariant) {
  // Writers keep two words equal under run_exclusive; shared-mode readers
  // must never observe them apart, across all speculation outcomes.
  TypeParam lock;
  CriticalSection<TypeParam> cs(ElisionPolicy::hle(), lock);
  tsx::Shared<std::uint64_t> a(0), b(0);
  bool torn = false;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  for (int t = 0; t < 6; ++t) {
    const bool writer = t % 3 == 0;
    sched.spawn([&, writer](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 60; ++k) {
        if (writer) {
          cs.run_exclusive(ctx, [&] {
            a.store(ctx, a.load(ctx) + 1);
            ctx.engine().compute(ctx, 40);
            b.store(ctx, b.load(ctx) + 1);
          });
        } else {
          cs.run_shared(ctx, [&] {
            const auto va = a.load(ctx);
            ctx.engine().compute(ctx, 40);
            if (va != b.load(ctx)) torn = true;
          });
        }
      }
    });
  }
  sched.run();
  EXPECT_FALSE(torn);
  EXPECT_EQ(a.unsafe_get(), b.unsafe_get());
  EXPECT_EQ(a.unsafe_get(), 2u * 60u);
}

TYPED_TEST(SharedLockTest, WriterPreferenceBlocksNewReaders) {
  // Reader 0 holds the lock; a writer announces intent; reader 2 arriving
  // later must wait for the writer (no reader barging past pending).
  TypeParam lock;
  std::vector<int> order;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  sched.spawn([&](sim::SimThread& st) {  // first reader
    auto& ctx = eng.context(st);
    lock.lock_shared(ctx);
    order.push_back(0);
    ctx.engine().compute(ctx, 50000);
    lock.unlock_shared(ctx);
  });
  sched.spawn([&](sim::SimThread& st) {  // writer, arrives second
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 1000);
    lock.lock(ctx);
    order.push_back(1);
    lock.unlock(ctx);
  });
  sched.spawn([&](sim::SimThread& st) {  // late reader
    auto& ctx = eng.context(st);
    ctx.engine().compute(ctx, 2000);
    lock.lock_shared(ctx);
    order.push_back(2);
    lock.unlock_shared(ctx);
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Reader avalanche: a real writer acquisition aborts the whole elided
// reader crowd, and telemetry attributes the aborts to the writer.
// ---------------------------------------------------------------------------

TYPED_TEST(SharedLockTest, WriterAcquisitionAbortsEntireElidedReaderCrowd) {
  TypeParam lock;
  CriticalSection<TypeParam> readers_cs(ElisionPolicy::hle().shared(), lock);
  CriticalSection<TypeParam> writer_cs(ElisionPolicy::standard(), lock);
  tsx::Shared<std::uint64_t> data(0);
  tsx::Telemetry telemetry;
  sim::Scheduler sched(quiet_machine());
  tsx::Engine eng(sched, quiet_tsx());
  eng.set_telemetry(&telemetry);
  // Thread 0 is the writer; it joins after the readers are circulating.
  sched.spawn([&](sim::SimThread& st) {
    auto& ctx = eng.context(st);
    for (int k = 0; k < 25; ++k) {
      ctx.engine().compute(ctx, 3000);
      writer_cs.run(ctx, [&] { data.store(ctx, data.load(ctx) + 1); });
    }
  });
  for (int t = 1; t < 7; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      for (int k = 0; k < 200; ++k) {
        readers_cs.run(ctx, [&] {
          data.load(ctx);
          ctx.engine().compute(ctx, 200);
        });
      }
    });
  }
  sched.run();
  EXPECT_EQ(data.unsafe_get(), 25u);
  // Telemetry must attribute elided-reader aborts to the writer (thread 0):
  // kTxAbort events on reader threads whose aborter is the writer.
  int reader_aborts_by_writer = 0;
  for (const auto& e : telemetry.merged()) {
    if (e.kind == tsx::EventKind::kTxAbort && e.thread != 0 &&
        e.other_thread == 0) {
      ++reader_aborts_by_writer;
    }
  }
  EXPECT_GT(reader_aborts_by_writer, 0);
}

}  // namespace
}  // namespace elision::locks
