#include "harness/bt_workload.hpp"

#include <vector>

#include "support/parallel.hpp"

#include "ds/btree.hpp"
#include "locks/schemes.hpp"
#include "locks/shared_mcs_lock.hpp"
#include "locks/shared_ttas_lock.hpp"
#include "support/rng.hpp"

namespace elision::harness {

const char* shared_lock_sel_name(SharedLockSel s) {
  switch (s) {
    case SharedLockSel::kSharedTtas: return "shared-ttas";
    case SharedLockSel::kSharedMcs: return "shared-mcs";
  }
  return "?";
}

namespace {

template <typename Lock>
RunStats run_bt_with_lock(const BtPoint& p, ds::BplusTree& tree) {
  Lock lock;
  locks::CriticalSection<Lock> cs(p.policy, lock);
  BenchConfig cfg;
  cfg.threads = p.threads;
  cfg.duration_sec = p.duration_sec;
  cfg.duration_scale = env_duration_scale();
  cfg.machine.seed = p.seed;
  cfg.timeline_slot_cycles = p.timeline_slot_cycles;
  cfg.policy = p.policy;
  cfg.telemetry = p.telemetry;
  cfg.avalanche = p.avalanche;
  const std::uint64_t domain = p.size * 2;
  const int half_updates = p.update_pct / 2;
  return run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(domain);
    const auto dice = static_cast<int>(rng.next_below(100));
    const auto read_dice = static_cast<int>(rng.next_below(100));
    if (dice < half_updates) {
      return cs.run_exclusive(ctx, [&] { tree.insert(ctx, key, key + 1); });
    }
    if (dice < p.update_pct) {
      return cs.run_exclusive(ctx, [&] { tree.erase(ctx, key); });
    }
    // Reads run under the point's policy mode (the shared-vs-exclusive
    // comparison axis).
    if (read_dice < p.scan_pct) {
      return cs.run(ctx, [&] {
        std::uint64_t sum;
        tree.range_sum(ctx, key, p.scan_len, &sum);
      });
    }
    return cs.run(ctx, [&] {
      std::uint64_t v;
      tree.lookup(ctx, key, &v);
    });
  });
}

}  // namespace

RunStats run_bt_point_once(const BtPoint& p) {
  // Nothing is ever freed and a leaf interval below 4 keys cannot split
  // again, so the node count is bounded by the key domain; 2*size + slack
  // is comfortably above that bound (see ds/btree.hpp).
  ds::BplusTree tree(p.size * 2 + 256);
  support::Xoshiro256 fill(p.seed);
  std::size_t filled = 0;
  while (filled < p.size) {
    const std::uint64_t key = fill.next_below(p.size * 2);
    if (tree.unsafe_insert(key, key + 1)) ++filled;
  }
  tree.unsafe_distribute_free_lists(p.threads);
  switch (p.lock) {
    case SharedLockSel::kSharedTtas:
      return run_bt_with_lock<locks::SharedTtasLock>(p, tree);
    case SharedLockSel::kSharedMcs:
      return run_bt_with_lock<locks::SharedMcsLock>(p, tree);
  }
  return {};
}

RunStats run_bt_point(const BtPoint& p) {
  const int n = p.seeds > 0 ? p.seeds : 1;
  std::vector<RunStats> per_seed(static_cast<std::size_t>(n));
  support::parallel_for_each(
      static_cast<std::size_t>(n),
      [&](std::size_t s) {
        BtPoint q = p;
        q.host_threads = 1;
        q.seed = p.seed + static_cast<std::uint64_t>(s) * 0x9E3779B9ULL;
        per_seed[s] = run_bt_point_once(q);
      },
      p.host_threads);
  RunStats total;
  for (int s = 0; s < n; ++s) {
    total.accumulate(per_seed[static_cast<std::size_t>(s)]);
  }
  return total;
}

}  // namespace elision::harness
