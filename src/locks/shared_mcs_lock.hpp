// Shared-mode MCS lock: the fair member of the two-mode (reader-writer)
// lock family.
//
// Writers order themselves through a plain MCS queue (Algorithm 2), so the
// writer side inherits MCS fairness and its elision behaviour: the XACQUIRE
// SWAP on the queue tail elides a solo enqueue. The queue head then
// arbitrates with readers through the reader-writer word of
// locks/shared_word.hpp: an *elided* writer merely subscribes to the word
// and insists it is free, while a real queue head announces intent (blocking
// new readers), drains the current ones and claims the writer bit. Readers
// use the common shared protocol and never touch the queue.
#pragma once

#include <cstdint>

#include "support/align.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/shared_word.hpp"
#include "tsx/shared.hpp"

namespace elision::locks {

class SharedMcsLock {
 public:
  static constexpr const char* kName = "Shared-MCS";
  static constexpr bool kIsFair = true;  // among writers (MCS queue order)

  // --- exclusive mode ---
  void lock(tsx::Ctx& ctx) {
    queue_.lock(ctx);  // speculative mode: elides when the queue is empty
    if (ctx.in_tx()) {
      // Elided writer: subscribe to the reader-writer word and the real
      // reader count and insist both are free. Any real reader or writer
      // present — or arriving, which invalidates a subscribed line — dooms
      // the speculation (the PAUSE aborts it).
      while (word().load(ctx) != 0 || readers().load(ctx) != 0) {
        ctx.engine().pause(ctx);
      }
      return;
    }
    // Real queue head: block new readers, drain the current real ones,
    // claim. Only the head manipulates the pending/writer bits, so plain
    // fetch_adds suffice; transient reader entries (optimistic entries that
    // back out) only touch the reader-count line.
    word().fetch_add(ctx, rw::kPendingUnit);
    while (readers().load(ctx) != 0) ctx.engine().pause(ctx);
    word().fetch_add(ctx, rw::kWriter - rw::kPendingUnit);
  }

  void unlock(tsx::Ctx& ctx) {
    // The writer bit must drop before the queue hand-off: the successor
    // claims the word itself and must not find it still writer-held. An
    // elided writer (still transactional here) never set the bit; its
    // XRELEASE on the queue tail validates and commits.
    if (!ctx.in_tx()) word().fetch_add(ctx, std::uint64_t{0} - rw::kWriter);
    queue_.unlock(ctx);
  }

  // --- shared mode ---
  void lock_shared(tsx::Ctx& ctx) {
    rw::lock_shared(ctx, word(), readers());
  }
  void unlock_shared(tsx::Ctx& ctx) {
    rw::unlock_shared(ctx, word(), readers());
  }

  bool is_held(tsx::Ctx& ctx) {
    return queue_.is_held(ctx) || word().load(ctx) != 0 ||
           readers().load(ctx) != 0;
  }
  // What blocks a *shared* acquisition. Deliberately only the word: a
  // queued-but-not-yet-pending writer does not block readers (writer
  // preference starts at the pending announcement), and subscribing elided
  // readers to the queue tail would abort them on every writer enqueue.
  bool is_write_locked(tsx::Ctx& ctx) {
    return (word().load(ctx) & rw::kReaderBlockMask) != 0;
  }

  // Cache line of the reader-writer word (telemetry tagging; the word is
  // what real acquisitions invalidate in the speculating crowd).
  support::LineId lock_line() const { return support::line_of(&word_.value); }

  // Abort aftermath: enqueue non-speculatively and wait — fair locks
  // "remember" the conflict (Ch. 3). Always acquires.
  bool reissue_acquire_standard(tsx::Ctx& ctx) {
    lock(ctx);  // ctx is in standard mode: the SWAP executes for real
    return true;
  }
  bool reissue_acquire_shared_standard(tsx::Ctx& ctx) {
    return rw::reissue_acquire_shared(ctx, word(), readers());
  }

 private:
  tsx::Shared<std::uint64_t>& word() { return word_.value; }
  tsx::Shared<std::uint64_t>& readers() { return readers_.value; }

  McsLock queue_;
  support::CacheAligned<tsx::Shared<std::uint64_t>> word_;
  // Real-reader count, deliberately on its own line (see shared_word.hpp).
  support::CacheAligned<tsx::Shared<std::uint64_t>> readers_;
};

}  // namespace elision::locks
