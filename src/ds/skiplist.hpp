// A skiplist over simulated shared memory: the third data-structure
// workload. Compared to the red-black tree its operations read a taller,
// sparser path (more cache lines per probe) and updates touch O(level)
// predecessor nodes without any rebalancing — a different transactional
// footprint for the elision schemes.
//
// Not thread-safe by itself; serialized by the caller's lock/scheme, like
// everything in the paper's coarse-grained setting.
#pragma once

#include <array>
#include <vector>
#include <cstdint>
#include <string>
#include <vector>

#include "support/align.hpp"
#include "support/rng.hpp"
#include "tsx/config.hpp"
#include "tsx/shared.hpp"

namespace elision::ds {

class SkipList {
 public:
  static constexpr int kMaxLevel = 16;

  // `capacity` bounds the number of live nodes.
  // `max_threads` sizes the per-thread free lists (see n_free_lists_
  // below); the default preserves the historical 64-thread pool layout.
  explicit SkipList(std::size_t capacity, std::uint64_t seed = 99,
                    int max_threads = tsx::kDefaultPoolThreads);

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  bool insert(tsx::Ctx& ctx, std::uint64_t key);
  bool erase(tsx::Ctx& ctx, std::uint64_t key);
  bool contains(tsx::Ctx& ctx, std::uint64_t key);

  // --- setup/verification (no simulated threads running) ---
  bool unsafe_insert(std::uint64_t key);
  std::size_t unsafe_size() const;
  std::vector<std::uint64_t> unsafe_keys() const;
  // Checks sortedness at every level and level-nesting consistency.
  bool unsafe_validate(std::string* why = nullptr) const;
  void unsafe_distribute_free_lists(int n_threads);

 private:
  struct alignas(support::kCacheLineBytes) Node {
    tsx::Shared<std::uint64_t> key;
    tsx::Shared<std::uint64_t> level;  // number of valid forward links
    std::array<tsx::Shared<Node*>, kMaxLevel> next;
  };

  // Deterministic geometric level (p = 1/2) from the per-structure RNG at
  // setup and from the thread RNG during simulation.
  static int random_level(support::Xoshiro256& rng);

  Node* alloc(tsx::Ctx& ctx, std::uint64_t key, int level);
  void free_node(tsx::Ctx& ctx, Node* n);

  std::vector<Node> arena_;
  Node head_;  // full-height sentinel; key unused
  // One free list per supported simulated thread + one setup/global list
  // (slot n_free_lists_ - 1). Sized at construction: the alloc() fallback
  // scan performs a simulated load per list, so the count is part of the
  // simulated workload and defaults to the historical 64-thread sizing
  // (tsx::kDefaultPoolThreads) rather than tracking kMaxThreads.
  const int n_free_lists_;
  std::vector<support::CacheAligned<tsx::Shared<Node*>>> free_;
  support::Xoshiro256 setup_rng_;
};

}  // namespace elision::ds
