file(REMOVE_RECURSE
  "CMakeFiles/abl_scm_nested.dir/abl_scm_nested.cpp.o"
  "CMakeFiles/abl_scm_nested.dir/abl_scm_nested.cpp.o.d"
  "abl_scm_nested"
  "abl_scm_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scm_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
