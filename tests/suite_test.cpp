// Bench-suite tests: curated point list, canonical JSON round-trip, the
// regression gate (including a planted regression and coverage loss), the
// paper-qualitative invariant checks, and the seed-merge regression test
// for run_rb_point's timeline aggregation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "harness/micro_point.hpp"
#include "harness/rb_workload.hpp"
#include "harness/suite.hpp"
#include "support/json.hpp"

namespace elision::harness {
namespace {

TEST(SuitePoints, SmokeIsNonTrivialSubsetOfFull) {
  const auto smoke = suite_points_for(SuiteTier::kSmoke);
  const auto full = suite_points_for(SuiteTier::kFull);
  EXPECT_GE(smoke.size(), 8u);
  EXPECT_GT(full.size(), smoke.size());
  std::set<std::string> full_ids;
  for (const auto& p : full) full_ids.insert(p.id);
  // Ids are unique and every smoke point is in the full tier.
  EXPECT_EQ(full_ids.size(), full.size());
  for (const auto& p : smoke) {
    EXPECT_EQ(p.tier, SuiteTier::kSmoke) << p.id;
    EXPECT_TRUE(full_ids.count(p.id)) << p.id;
  }
}

TEST(SuitePoints, MicroEngineCanariesAreRegisteredInSmoke) {
  // Both simulator-speed canaries: the paper's 8-hyperthread machine and
  // the big 64-thread / 32-core machine behind the O(log N) ready queue.
  const auto smoke = suite_points_for(SuiteTier::kSmoke);
  const SuitePoint* t8 = nullptr;
  const SuitePoint* t64 = nullptr;
  int micros = 0;
  for (const auto& sp : smoke) {
    if (sp.kind != PointKind::kMicro) continue;
    ++micros;
    EXPECT_STREQ(point_kind_name(sp.kind), "micro");
    if (sp.id == "micro-engine-rtm-t8") t8 = &sp;
    if (sp.id == "micro-engine-rtm-t64") t64 = &sp;
  }
  EXPECT_EQ(micros, 2);
  ASSERT_NE(t8, nullptr);
  ASSERT_NE(t64, nullptr);
  // The t8 canary keeps the seed's machine shape (no overrides emitted, so
  // its baseline line is byte-identical to the pre-ready-queue one).
  EXPECT_EQ(t8->point.n_cores, 0u);
  EXPECT_EQ(t8->point.micro_ops, 0u);
  // The t64 canary runs the 32-core / 2-SMT big machine.
  EXPECT_EQ(t64->point.threads, 64);
  EXPECT_EQ(t64->point.n_cores, 32u);
  EXPECT_EQ(t64->point.smt_per_core, 2u);
}

// The micro point is the simulator-speed canary: its simulated metrics must
// be bit-identical run to run (and, by the address-alignment contract in
// micro_point.cpp, process to process) or sim_ops_per_sec would conflate
// workload drift with host speed.
TEST(MicroPointRun, SimulatedMetricsAreDeterministic) {
  MicroPoint p;
  p.ops_per_thread = 2000;
  const RunStats a = run_micro_point(p);
  const RunStats b = run_micro_point(p);
  EXPECT_GT(a.ops, 0u);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.spec_ops, b.spec_ops);
  EXPECT_EQ(a.nonspec_ops, b.nonspec_ops);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
  EXPECT_EQ(a.tx.commits, b.tx.commits);
  EXPECT_EQ(a.tx.aborts, b.tx.aborts);
  // Every op completed one way or the other.
  EXPECT_EQ(a.spec_ops + a.nonspec_ops, a.ops);
  // The shared hot line keeps conflict detection exercised.
  EXPECT_GT(a.tx.aborts, 0u);
}

// Regression (bench_common.hpp run_rb_point): per-slot timeline data was
// silently dropped when seeds > 1, so Fig 3.3-style benches averaged only
// zeros. The timelines of all seed runs must merge slot-wise.
TEST(RbWorkload, TimelineMergedAcrossSeeds) {
  RbPoint p;
  p.size = 64;
  p.threads = 4;
  p.duration_sec = 0.0004;
  p.seeds = 2;
  p.scheme = locks::ElisionPolicy::hle();
  p.timeline_slot_cycles = 340000;  // ~4 slots per seed run
  const RunStats merged = run_rb_point(p);
  ASSERT_GT(merged.ops, 0u);
  ASSERT_FALSE(merged.timeline.empty());
  std::uint64_t timeline_ops = 0;
  std::uint64_t timeline_nonspec = 0;
  for (const auto& slot : merged.timeline) {
    timeline_ops += slot.ops;
    timeline_nonspec += slot.nonspec_ops;
  }
  // Every completed op of every seed lands in some slot.
  EXPECT_EQ(timeline_ops, merged.ops);
  EXPECT_EQ(timeline_nonspec, merged.nonspec_ops);

  // And the merge really covers both seeds: a single-seed run has
  // strictly fewer ops.
  RbPoint single = p;
  single.seeds = 1;
  const RunStats one = run_rb_point(single);
  EXPECT_GT(merged.ops, one.ops);
}

TEST(RbWorkload, AccumulateChecksGhzAndMergesCounters) {
  RunStats a;
  a.ops = 10;
  a.elapsed_cycles = 1000;
  a.ghz = 2.0;
  a.timeline.resize(2);
  a.timeline[1].ops = 4;
  RunStats total;
  total.accumulate(a);
  EXPECT_DOUBLE_EQ(total.ghz, 2.0);  // taken from the first run, not 3.4
  total.accumulate(a);
  EXPECT_EQ(total.ops, 20u);
  ASSERT_EQ(total.timeline.size(), 2u);
  EXPECT_EQ(total.timeline[1].ops, 8u);

  RunStats other_machine;
  other_machine.ops = 1;
  other_machine.elapsed_cycles = 10;
  other_machine.ghz = 3.4;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(total.accumulate(other_machine), "different MachineConfig");
}

SuiteResult tiny_result() {
  SuiteResult r;
  r.tier = SuiteTier::kSmoke;
  r.duration_scale = 1.0;
  r.telemetry_compiled = true;
  r.n_cores = 4;
  r.smt_per_core = 2;
  r.ghz = 3.4;
  int i = 0;
  for (const auto& sp : suite_points_for(SuiteTier::kSmoke)) {
    PointRecord rec;
    rec.def = sp;
    rec.metrics.throughput_ops_per_sec = 1e7 + 1e6 * i;
    rec.metrics.spec_fraction = 0.9;
    rec.metrics.nonspec_fraction = 0.1;
    rec.metrics.attempts_per_op = 1.25;
    rec.metrics.ops = 1000 + static_cast<std::uint64_t>(i);
    rec.metrics.attempts = 1250;
    rec.metrics.elapsed_cycles = 123456;
    rec.metrics.tx_begins = 1200;
    rec.metrics.tx_commits = 900;
    rec.metrics.tx_aborts = 300;
    rec.metrics.aborts_by_cause.assign(
        static_cast<std::size_t>(tsx::AbortCause::kCauseCount), 0);
    rec.metrics.aborts_by_cause[static_cast<std::size_t>(
        tsx::AbortCause::kConflict)] = 7;
    rec.metrics.avalanche_episodes = 2;
    rec.metrics.avalanche_victims = 9;
    r.points.push_back(std::move(rec));
    ++i;
  }
  return r;
}

std::string to_json_string(const SuiteResult& r) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  write_results_json(r, f);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

TEST(SuiteJson, ResultsRoundTrip) {
  const SuiteResult orig = tiny_result();
  const std::string text = to_json_string(orig);

  const auto doc = support::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  const auto parsed = parse_results_json(*doc);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->tier, orig.tier);
  EXPECT_DOUBLE_EQ(parsed->duration_scale, orig.duration_scale);
  EXPECT_EQ(parsed->telemetry_compiled, orig.telemetry_compiled);
  EXPECT_EQ(parsed->n_cores, orig.n_cores);
  EXPECT_DOUBLE_EQ(parsed->ghz, orig.ghz);
  ASSERT_EQ(parsed->points.size(), orig.points.size());
  for (std::size_t i = 0; i < orig.points.size(); ++i) {
    const auto& a = orig.points[i];
    const auto& b = parsed->points[i];
    EXPECT_EQ(b.def.id, a.def.id);  // insertion order preserved
    EXPECT_EQ(b.def.tier, a.def.tier);
    // Machine-shape / micro-shape overrides survive the round trip (emitted
    // only when set; the t64 canary in this grid sets all of them).
    EXPECT_EQ(b.def.point.n_cores, a.def.point.n_cores) << a.def.id;
    EXPECT_EQ(b.def.point.smt_per_core, a.def.point.smt_per_core) << a.def.id;
    EXPECT_EQ(b.def.point.yield_slack_cycles, a.def.point.yield_slack_cycles)
        << a.def.id;
    EXPECT_EQ(b.def.point.micro_ops, a.def.point.micro_ops) << a.def.id;
    EXPECT_EQ(b.def.point.micro_shared_period, a.def.point.micro_shared_period)
        << a.def.id;
    EXPECT_NEAR(b.metrics.throughput_ops_per_sec,
                a.metrics.throughput_ops_per_sec, 1.0);
    EXPECT_NEAR(b.metrics.nonspec_fraction, a.metrics.nonspec_fraction, 1e-6);
    EXPECT_EQ(b.metrics.ops, a.metrics.ops);
    EXPECT_EQ(b.metrics.aborts_by_cause[static_cast<std::size_t>(
                  tsx::AbortCause::kConflict)],
              7u);
    EXPECT_EQ(b.metrics.avalanche_episodes, 2u);
  }
}

TEST(SuiteJson, HostMetadataAndSimSpeedRoundTrip) {
  SuiteResult orig = tiny_result();
  orig.host_cores = 16;
  orig.jobs = 4;
  orig.jobs_mode = "threads";
  orig.host_threads = 3;
  orig.total_wall_ms = 1234.5;
  orig.points[0].metrics.sim_ops_per_sec = 5.5e6;
  orig.points[0].metrics.wall_ms = 42.125;

  const auto doc = support::json::parse(to_json_string(orig));
  ASSERT_TRUE(doc.has_value());
  const auto parsed = parse_results_json(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host_cores, 16u);
  EXPECT_EQ(parsed->jobs, 4);
  EXPECT_EQ(parsed->jobs_mode, "threads");
  EXPECT_EQ(parsed->host_threads, 3);
  EXPECT_NEAR(parsed->total_wall_ms, 1234.5, 1e-3);
  EXPECT_NEAR(parsed->points[0].metrics.sim_ops_per_sec, 5.5e6, 1.0);
  EXPECT_NEAR(parsed->points[0].metrics.wall_ms, 42.125, 1e-3);
  // Point kinds survive the round trip.
  for (std::size_t i = 0; i < orig.points.size(); ++i) {
    EXPECT_EQ(parsed->points[i].def.kind, orig.points[i].def.kind)
        << orig.points[i].def.id;
  }
}

TEST(SuiteJson, HostFieldsDefaultWhenAbsent) {
  // Documents written before jobs_mode/host_threads existed (e.g. an older
  // committed baseline) must still parse, with the sequential defaults.
  SuiteResult orig = tiny_result();
  std::string json = to_json_string(orig);
  const auto cut = json.find("\"jobs_mode\"");
  ASSERT_NE(cut, std::string::npos);
  const auto end = json.find("\"total_wall_ms\"");
  ASSERT_NE(end, std::string::npos);
  json.erase(cut, end - cut);  // drop jobs_mode and host_threads keys
  const auto doc = support::json::parse(json);
  ASSERT_TRUE(doc.has_value());
  const auto parsed = parse_results_json(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->jobs_mode, "fork");
  EXPECT_EQ(parsed->host_threads, 1);
}

TEST(SuiteJson, RejectsWrongSchemaVersion) {
  const auto doc =
      support::json::parse("{\"schema_version\":999,\"points\":[]}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(parse_results_json(*doc).has_value());
}

TEST(SuiteGate, PassesOnIdenticalResults) {
  const SuiteResult base = tiny_result();
  const GateReport report = compare_to_baseline(base, base);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.improvements.empty());
}

TEST(SuiteGate, DetectsPlantedThroughputRegression) {
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points[0].metrics.throughput_ops_per_sec *= 0.5;  // planted: -50%
  const GateReport report = compare_to_baseline(cur, base);
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].point_id, base.points[0].def.id);
  EXPECT_EQ(report.regressions[0].metric, "throughput_ops_per_sec");
}

TEST(SuiteGate, DetectsAttemptsAndFallbackRegressions) {
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points[1].metrics.attempts_per_op *= 1.5;
  cur.points[2].metrics.nonspec_fraction += 0.2;
  const GateReport report = compare_to_baseline(cur, base);
  ASSERT_EQ(report.regressions.size(), 2u);
  EXPECT_EQ(report.regressions[0].metric, "attempts_per_op");
  EXPECT_EQ(report.regressions[1].metric, "nonspec_fraction");
}

TEST(SuiteGate, DetectsPlantedSimulatorSlowdown) {
  SuiteResult base = tiny_result();
  for (auto& p : base.points) p.metrics.sim_ops_per_sec = 1e6;
  SuiteResult cur = base;
  cur.points[0].metrics.sim_ops_per_sec *= 0.2;  // past the default 75% slack
  const GateReport report = compare_to_baseline(cur, base);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].point_id, base.points[0].def.id);
  EXPECT_EQ(report.regressions[0].metric, "sim_ops_per_sec");
}

TEST(SuiteGate, SimSpeedSkippedWithoutBaselineDataOrWhenDisabled) {
  // Baselines that predate sim_ops_per_sec carry 0: never a regression.
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points[0].metrics.sim_ops_per_sec = 1e6;
  EXPECT_TRUE(compare_to_baseline(cur, base).ok());

  // simops_rel >= 1.0 disables the check even with data on both sides.
  SuiteResult base2 = base;
  for (auto& p : base2.points) p.metrics.sim_ops_per_sec = 1e6;
  SuiteResult cur2 = base2;
  cur2.points[0].metrics.sim_ops_per_sec = 1.0;  // 6 orders slower
  GateTolerance tol;
  tol.simops_rel = 1.0;
  EXPECT_TRUE(compare_to_baseline(cur2, base2, tol).ok());
}

TEST(SuiteGate, WithinToleranceIsNotARegression) {
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points[0].metrics.throughput_ops_per_sec *= 0.95;  // within 10%
  cur.points[1].metrics.attempts_per_op *= 1.10;         // within 15%
  EXPECT_TRUE(compare_to_baseline(cur, base).ok());
}

TEST(SuiteGate, MissingBaselinePointIsCoverageLoss) {
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points.pop_back();
  const GateReport report = compare_to_baseline(cur, base);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].metric, "coverage");
}

TEST(SuiteGate, BigImprovementSuggestsBaselineRefresh) {
  const SuiteResult base = tiny_result();
  SuiteResult cur = base;
  cur.points[0].metrics.throughput_ops_per_sec *= 2.0;
  const GateReport report = compare_to_baseline(cur, base);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.improvements.size(), 1u);
  EXPECT_EQ(report.improvements[0].metric, "throughput_ops_per_sec");
}

TEST(SuiteInvariants, ViolationIsReportedOnDoctoredResults) {
  SuiteResult r = tiny_result();
  // Make HLE-SCM slower than HLE on the contended MCS point.
  auto* hle = const_cast<PointRecord*>(r.find("rb-s64-u20-t8-mcs-hle"));
  auto* scm = const_cast<PointRecord*>(r.find("rb-s64-u20-t8-mcs-hle-scm"));
  ASSERT_NE(hle, nullptr);
  ASSERT_NE(scm, nullptr);
  hle->metrics.throughput_ops_per_sec = 2e7;
  scm->metrics.throughput_ops_per_sec = 1e7;
  bool found = false;
  for (const auto& inv : check_invariants(r)) {
    if (inv.name == "scm-beats-hle-on-contended-mcs") {
      EXPECT_FALSE(inv.skipped);
      EXPECT_FALSE(inv.ok);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SuiteInvariants, MissingPointsAreSkippedNotFailed) {
  SuiteResult empty;
  for (const auto& inv : check_invariants(empty)) {
    EXPECT_TRUE(inv.skipped) << inv.name;
    EXPECT_TRUE(inv.ok) << inv.name;
  }
}

// End-to-end smoke on one real point: running the same suite point twice is
// bit-identical (the gate depends on this determinism).
TEST(SuiteRun, PointIsDeterministic) {
  const auto points = suite_points_for(SuiteTier::kSmoke);
  ASSERT_FALSE(points.empty());
  RbPoint p = points[1].point;  // ttas-hle
  p.duration_sec = 0.0005;
  const PointMetrics a = PointMetrics::derive(run_rb_point(p));
  const PointMetrics b = PointMetrics::derive(run_rb_point(p));
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_DOUBLE_EQ(a.throughput_ops_per_sec, b.throughput_ops_per_sec);
  EXPECT_EQ(a.aborts_by_cause, b.aborts_by_cause);
}

}  // namespace
}  // namespace elision::harness
