// elide — command-line explorer for the elision library.
//
// Run any of the paper's workloads with your own parameters:
//
//   elide tree   [--lock L] [--scheme S] [--threads N] [--size K]
//                [--updates PCT] [--ms VIRTUAL_MS] [--hwext] [--trace FILE]
//   elide stamp  APP [--lock L] [--scheme S] [--threads N] [--scale X]
//   elide schemes [--size K] [--updates PCT] [--threads N]   (compare all)
//
// Locks: ttas mcs ticket ticket-adj clh clh-adj
// Schemes: standard hle hle-scm pes-slr opt-slr opt-slr-scm rtm-elide
//          hle-scm-nested hle-gscm
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ds/rbtree.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "locks/clh_lock.hpp"
#include "locks/mcs_lock.hpp"
#include "locks/policy.hpp"
#include "locks/schemes.hpp"
#include "locks/ticket_lock.hpp"
#include "locks/ttas_lock.hpp"
#include "sim/machine_config.hpp"
#include "stamp/common.hpp"
#include "support/parse.hpp"
#include "tsx/trace.hpp"

namespace {

using namespace elision;

struct Options {
  std::string lock = "ttas";
  std::string scheme = "hle-scm";
  int threads = 8;
  std::size_t size = 1024;
  int updates = 20;
  double ms = 2.0;
  double scale = 1.0;
  bool hwext = false;
  std::string trace_file;
};


[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(
      stderr,
      "usage:\n"
      "  elide tree    [--lock L] [--scheme S] [--threads N] [--size K]\n"
      "                [--updates PCT] [--ms MS] [--hwext] [--trace FILE]\n"
      "  elide stamp   APP [--lock ttas|mcs] [--scheme S] [--threads N]\n"
      "                [--scale X]\n"
      "  elide schemes [--size K] [--updates PCT] [--threads N] [--ms MS]\n"
      "\n"
      "locks:   ttas mcs ticket ticket-adj clh clh-adj\n"
      "schemes: standard hle hle-scm pes-slr opt-slr opt-slr-scm rtm-elide\n"
      "         hle-scm-nested hle-gscm\n"
      "stamp apps: genome intruder kmeans_high kmeans_low ssca2\n"
      "            vacation_high vacation_low labyrinth\n");
  std::exit(2);
}

Options parse(int argc, char** argv, int first, std::string* positional) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--lock") {
      o.lock = next();
    } else if (a == "--scheme") {
      o.scheme = next();
    } else if (a == "--threads") {
      const auto v = support::parse_int(next());
      if (!v) usage("--threads must be a decimal integer");
      o.threads = *v;
    } else if (a == "--size") {
      const auto v = support::parse_u64(next());
      if (!v || *v < 1) usage("--size must be a decimal integer >= 1");
      o.size = static_cast<std::size_t>(*v);
    } else if (a == "--updates") {
      const auto v = support::parse_int(next());
      if (!v) usage("--updates must be a decimal integer");
      o.updates = *v;
    } else if (a == "--ms") {
      const auto v = support::parse_double(next());
      if (!v || *v <= 0) usage("--ms must be a number > 0");
      o.ms = *v;
    } else if (a == "--scale") {
      const auto v = support::parse_double(next());
      if (!v || *v <= 0) usage("--scale must be a number > 0");
      o.scale = *v;
    } else if (a == "--hwext") {
      o.hwext = true;
    } else if (a == "--trace") {
      o.trace_file = next();
    } else if (!a.empty() && a[0] != '-' && positional != nullptr &&
               positional->empty()) {
      *positional = a;
    } else {
      usage(("unknown argument " + a).c_str());
    }
  }
  if (o.threads < 1 || o.threads > sim::kMaxSimThreads) {
    usage(("--threads must be in [1," + std::to_string(sim::kMaxSimThreads) +
           "] (kMaxSimThreads)")
              .c_str());
  }
  if (o.updates < 0 || o.updates > 100) usage("--updates must be in [0,100]");
  return o;
}

// One shared policy-spec grammar across every CLI (see locks/policy.hpp):
// `<scheme>[+shared][:knob=N...]`, e.g. "hle-scm:retries=5". The scheme
// spellings are the canonical scheme_slug() ones listed in usage().
locks::ElisionPolicy parse_policy(const std::string& s) {
  const std::optional<locks::ElisionPolicy> p = locks::ElisionPolicy::parse(s);
  if (!p) usage(("unknown policy spec " + s).c_str());
  return *p;
}

template <typename Lock>
int run_tree_with(const Options& o, const locks::ElisionPolicy& policy) {
  ds::RbTree tree(o.size * 4 + 256,
                  std::max(o.threads, tsx::kDefaultPoolThreads));
  support::Xoshiro256 fill(42);
  std::size_t filled = 0;
  while (filled < o.size) {
    if (tree.unsafe_insert(fill.next_below(o.size * 2))) ++filled;
  }
  tree.unsafe_distribute_free_lists(o.threads);

  Lock lock;
  locks::CriticalSection<Lock> cs(policy, lock);
  harness::BenchConfig cfg;
  cfg.threads = o.threads;
  cfg.duration_sec = o.ms / 1e3;
  cfg.tsx.hardware_extension = o.hwext;

  // Tracing requires driving the scheduler ourselves.
  tsx::Trace trace;
  sim::Scheduler sched(cfg.machine);
  tsx::Engine eng(sched, cfg.tsx);
  if (!o.trace_file.empty()) eng.set_trace(&trace);
  std::uint64_t ops = 0, nonspec = 0, attempts = 0;
  const int half = o.updates / 2;
  for (int t = 0; t < o.threads; ++t) {
    sched.spawn([&](sim::SimThread& st) {
      auto& ctx = eng.context(st);
      while (!st.stop_requested()) {
        const std::uint64_t key = st.rng().next_below(o.size * 2);
        const auto dice = static_cast<int>(st.rng().next_below(100));
        const auto r = cs.run(ctx, [&] {
          if (dice < half) {
            tree.insert(ctx, key);
          } else if (dice < o.updates) {
            tree.erase(ctx, key);
          } else {
            tree.contains(ctx, key);
          }
        });
        ++ops;
        attempts += static_cast<std::uint64_t>(r.attempts);
        if (!r.speculative) ++nonspec;
      }
    });
  }
  sched.run_for(cfg.duration_cycles());

  const double secs = cfg.machine.seconds(sched.elapsed_cycles());
  const auto tx = eng.total_stats();
  std::printf("workload:   red-black tree, size %zu, %d%% updates, %d threads\n",
              o.size, o.updates, o.threads);
  std::printf("scheme:     %s on %s%s\n", policy.spec().c_str(),
              Lock::kName, o.hwext ? " + Ch.7 hardware extension" : "");
  std::printf("throughput: %.2f Mops/s  (%llu ops in %.2f simulated ms)\n",
              ops / secs / 1e6, static_cast<unsigned long long>(ops),
              secs * 1e3);
  std::printf("attempts/op %.2f   non-speculative %.1f%%\n",
              ops ? static_cast<double>(attempts) / ops : 0.0,
              ops ? 100.0 * nonspec / ops : 0.0);
  std::printf("tx: %llu begun, %llu committed, %llu aborted",
              static_cast<unsigned long long>(tx.begins),
              static_cast<unsigned long long>(tx.commits),
              static_cast<unsigned long long>(tx.aborts));
  for (int c = 0; c < static_cast<int>(tsx::AbortCause::kCauseCount); ++c) {
    if (tx.aborts_by_cause[c] == 0) continue;
    std::printf("  %s=%llu", to_string(static_cast<tsx::AbortCause>(c)),
                static_cast<unsigned long long>(tx.aborts_by_cause[c]));
  }
  std::printf("\n");
  if (!o.trace_file.empty()) {
    std::FILE* f = std::fopen(o.trace_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", o.trace_file.c_str());
      return 1;
    }
    trace.dump_csv(f);
    std::fclose(f);
    std::printf("trace: %zu events -> %s\n", trace.size(),
                o.trace_file.c_str());
  }
  return 0;
}

int cmd_tree(const Options& o) {
  const locks::ElisionPolicy scheme = parse_policy(o.scheme);
  if (o.lock == "ttas") return run_tree_with<locks::TtasLock>(o, scheme);
  if (o.lock == "mcs") return run_tree_with<locks::McsLock>(o, scheme);
  if (o.lock == "ticket") return run_tree_with<locks::TicketLock>(o, scheme);
  if (o.lock == "ticket-adj") {
    return run_tree_with<locks::TicketLockAdjusted>(o, scheme);
  }
  if (o.lock == "clh") return run_tree_with<locks::ClhLock>(o, scheme);
  if (o.lock == "clh-adj") {
    return run_tree_with<locks::ClhLockAdjusted>(o, scheme);
  }
  usage(("unknown lock " + o.lock).c_str());
}

int cmd_stamp(const Options& o, const std::string& app) {
  if (app.empty()) usage("stamp requires an APP argument");
  bool known = false;
  for (const char* name : stamp::kAllAppNames) {
    if (app == name) known = true;
  }
  if (!known) usage(("unknown STAMP app " + app).c_str());
  stamp::StampConfig cfg;
  cfg.threads = o.threads;
  cfg.scale = o.scale;
  cfg.scheme = parse_policy(o.scheme).scheme;  // STAMP is scheme-only
  if (o.lock == "ttas") {
    cfg.lock = stamp::LockKind::kTtas;
  } else if (o.lock == "mcs") {
    cfg.lock = stamp::LockKind::kMcs;
  } else {
    usage("stamp supports --lock ttas|mcs");
  }
  const auto r = stamp::run_app(app, cfg);
  std::printf("app:        %s (scale %.2f, %d threads)\n", app.c_str(),
              o.scale, o.threads);
  std::printf("scheme:     %s on %s\n", locks::scheme_name(cfg.scheme),
              stamp::lock_name(cfg.lock));
  std::printf("run time:   %.3f simulated ms\n",
              1e3 * r.seconds(cfg.machine.ghz));
  std::printf("critical sections: %llu   attempts/op %.2f   "
              "non-speculative %.1f%%\n",
              static_cast<unsigned long long>(r.ops), r.attempts_per_op(),
              100 * r.nonspec_fraction());
  std::printf("checksum:   %llu   invariants: %s\n",
              static_cast<unsigned long long>(r.checksum),
              r.invariants_ok ? "ok" : "VIOLATED");
  return r.invariants_ok ? 0 : 1;
}

int cmd_schemes(const Options& o) {
  std::printf("All schemes on a %zu-node tree, %d%% updates, %d threads "
              "(TTAS / MCS Mops/s):\n\n",
              o.size, o.updates, o.threads);
  harness::Table table({"scheme", "TTAS Mops/s", "MCS Mops/s"});
  for (const locks::Scheme s : locks::kAllSchemes) {
    if (s == locks::Scheme::kHleScmNested) continue;  // needs hw flag
    const locks::ElisionPolicy scheme = locks::ElisionPolicy::from_scheme(s);
    auto run = [&](auto lock_tag) {
      using Lock = decltype(lock_tag);
      ds::RbTree tree(o.size * 4 + 256,
                  std::max(o.threads, tsx::kDefaultPoolThreads));
      support::Xoshiro256 fill(42);
      std::size_t filled = 0;
      while (filled < o.size) {
        if (tree.unsafe_insert(fill.next_below(o.size * 2))) ++filled;
      }
      tree.unsafe_distribute_free_lists(o.threads);
      Lock lock;
      locks::CriticalSection<Lock> cs(scheme, lock);
      harness::BenchConfig cfg;
      cfg.threads = o.threads;
      cfg.duration_sec = o.ms / 1e3;
      const int half = o.updates / 2;
      const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
        const std::uint64_t key = ctx.thread().rng().next_below(o.size * 2);
        const auto dice = static_cast<int>(ctx.thread().rng().next_below(100));
        return cs.run(ctx, [&] {
          if (dice < half) {
            tree.insert(ctx, key);
          } else if (dice < o.updates) {
            tree.erase(ctx, key);
          } else {
            tree.contains(ctx, key);
          }
        });
      });
      return stats.throughput() / 1e6;
    };
    table.add_row({scheme.spec(), harness::fmt(run(locks::TtasLock{}), 2),
                   harness::fmt(run(locks::McsLock{}), 2)});
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage("missing command");
  const std::string cmd = argv[1];
  std::string positional;
  const Options o = parse(argc, argv, 2, &positional);
  if (cmd == "tree") return cmd_tree(o);
  if (cmd == "stamp") return cmd_stamp(o, positional);
  if (cmd == "schemes") return cmd_schemes(o);
  usage(("unknown command " + cmd).c_str());
}
