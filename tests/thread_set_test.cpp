// Unit tests for the widened per-line thread mask (tsx::ThreadSet): the
// word-boundary bits the old single-uint64 mask could not represent, the
// ascending iteration order abort propagation depends on, and the whole-set
// predicates the engine's write-upgrade path uses.
#include <gtest/gtest.h>

#include <vector>

#include "tsx/config.hpp"
#include "tsx/thread_set.hpp"

namespace elision::tsx {
namespace {

TEST(ThreadSet, CoversFullThreadRange) {
  static_assert(ThreadSet::kWords * ThreadSet::kBitsPerWord >= kMaxThreads);
  ASSERT_GE(kMaxThreads, 256);  // the ids below must all be representable
}

TEST(ThreadSet, WordBoundaryBits) {
  // Bit 0 and 63 live in the old inline word; 64 is the first spilled bit;
  // 255 is the last representable id.
  for (const int id : {0, 63, 64, 255}) {
    ThreadSet s;
    EXPECT_FALSE(s.test(id));
    EXPECT_TRUE(s.none());
    s.set(id);
    EXPECT_TRUE(s.test(id)) << id;
    EXPECT_TRUE(s.any()) << id;
    EXPECT_TRUE(s.is_only(id)) << id;
    EXPECT_FALSE(s.any_other(id)) << id;
    // Neighbours are untouched.
    if (id > 0) {
      EXPECT_FALSE(s.test(id - 1)) << id;
    }
    if (id < kMaxThreads - 1) {
      EXPECT_FALSE(s.test(id + 1)) << id;
    }
    s.reset(id);
    EXPECT_FALSE(s.test(id)) << id;
    EXPECT_TRUE(s.none()) << id;
  }
}

TEST(ThreadSet, IterationOrderIsAscendingAcrossWords) {
  ThreadSet s;
  const std::vector<int> ids = {255, 64, 0, 130, 63, 65, 17, 192};
  for (const int id : ids) s.set(id);
  std::vector<int> seen;
  s.for_each([&seen](int id) { seen.push_back(id); });
  const std::vector<int> want = {0, 17, 63, 64, 65, 130, 192, 255};
  EXPECT_EQ(seen, want);
}

TEST(ThreadSet, AnyOtherAndIsOnlyAcrossWords) {
  ThreadSet s;
  s.set(5);
  EXPECT_TRUE(s.is_only(5));
  EXPECT_FALSE(s.any_other(5));
  // any_other must see members in *other* words too.
  s.set(200);
  EXPECT_FALSE(s.is_only(5));
  EXPECT_TRUE(s.any_other(5));
  EXPECT_TRUE(s.any_other(200));
  // ...and is indifferent to whether the queried id itself is a member.
  EXPECT_TRUE(s.any_other(77));
  s.reset(5);
  EXPECT_TRUE(s.is_only(200));
  EXPECT_FALSE(s.any_other(200));
}

TEST(ThreadSet, AssignOnlyClearsEveryWord) {
  ThreadSet s;
  for (const int id : {0, 63, 64, 128, 255}) s.set(id);
  s.assign_only(70);
  EXPECT_TRUE(s.is_only(70));
  std::vector<int> seen;
  s.for_each([&seen](int id) { seen.push_back(id); });
  EXPECT_EQ(seen, std::vector<int>{70});
  s.clear();
  EXPECT_TRUE(s.none());
}

TEST(ThreadSet, EqualityAndValueSemantics) {
  ThreadSet a;
  ThreadSet b;
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_NE(a, b);
  b = a;  // plain copy, like the old integer mask
  EXPECT_EQ(a, b);
  b.set(0);
  EXPECT_NE(a, b);
  b = ThreadSet{};  // the LineTable slot-recycling idiom
  EXPECT_TRUE(b.none());
}

}  // namespace
}  // namespace elision::tsx
