// Harness tests: metric accounting, timelines, determinism, reporting.
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"
#include "tsx/shared.hpp"

namespace elision::harness {
namespace {

BenchConfig quiet_config() {
  BenchConfig cfg;
  cfg.machine.n_cores = 8;
  cfg.machine.smt_per_core = 1;
  cfg.tsx.spurious_per_begin = 0;
  cfg.tsx.spurious_per_access = 0;
  cfg.threads = 4;
  cfg.duration_sec = 0.0001;
  return cfg;
}

TEST(Runner, CountsOpsAndAttempts) {
  BenchConfig cfg = quiet_config();
  RunStats st = run_workload(cfg, [](tsx::Ctx& ctx) -> locks::RegionResult {
    ctx.engine().compute(ctx, 100);
    return {.speculative = true, .attempts = 3};
  });
  EXPECT_GT(st.ops, 0u);
  EXPECT_EQ(st.spec_ops, st.ops);
  EXPECT_EQ(st.nonspec_ops, 0u);
  EXPECT_EQ(st.attempts, st.ops * 3);
  EXPECT_DOUBLE_EQ(st.attempts_per_op(), 3.0);
  EXPECT_DOUBLE_EQ(st.nonspec_fraction(), 0.0);
}

TEST(Runner, NonSpecFractionMixes) {
  BenchConfig cfg = quiet_config();
  cfg.threads = 1;
  int i = 0;
  RunStats st = run_workload(cfg, [&i](tsx::Ctx& ctx) -> locks::RegionResult {
    ctx.engine().compute(ctx, 100);
    return {.speculative = (i++ % 2 == 0), .attempts = 1};
  });
  EXPECT_NEAR(st.nonspec_fraction(), 0.5, 0.01);
}

TEST(Runner, RespectsVirtualDeadline) {
  BenchConfig cfg = quiet_config();
  cfg.duration_sec = 0.0002;
  RunStats st = run_workload(cfg, [](tsx::Ctx& ctx) -> locks::RegionResult {
    ctx.engine().compute(ctx, 1000);
    return {.speculative = true, .attempts = 1};
  });
  // 0.2 ms at 3.4 GHz = 680k cycles; 4 threads x 680 ops.
  EXPECT_NEAR(static_cast<double>(st.ops), 4 * 680.0, 10.0);
  EXPECT_GE(st.elapsed_cycles, cfg.duration_cycles());
}

TEST(Runner, DeterministicAcrossIdenticalRuns) {
  auto once = [] {
    BenchConfig cfg = quiet_config();
    locks::TtasLock lock;
    locks::CriticalSection<locks::TtasLock> cs(locks::ElisionPolicy::hle(), lock);
    tsx::Shared<std::uint64_t> hot(0);
    return run_workload(cfg, [&](tsx::Ctx& ctx) {
      return cs.run(ctx, [&] { hot.store(ctx, hot.load(ctx) + 1); });
    });
  };
  const RunStats a = once();
  const RunStats b = once();
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.spec_ops, b.spec_ops);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.elapsed_cycles, b.elapsed_cycles);
}

TEST(Runner, TimelineSlotsAccumulate) {
  BenchConfig cfg = quiet_config();
  cfg.timeline_slot_cycles = cfg.duration_cycles() / 10;
  RunStats st = run_workload(cfg, [](tsx::Ctx& ctx) -> locks::RegionResult {
    ctx.engine().compute(ctx, 500);
    return {.speculative = true, .attempts = 1};
  });
  ASSERT_GE(st.timeline.size(), 10u);
  std::uint64_t timeline_total = 0;
  for (const auto& slot : st.timeline) timeline_total += slot.ops;
  EXPECT_EQ(timeline_total, st.ops);
  // A uniform workload spreads roughly evenly over the first 10 slots.
  for (int s = 0; s < 10; ++s) {
    EXPECT_NEAR(static_cast<double>(st.timeline[s].ops),
                static_cast<double>(st.ops) / 10.0,
                static_cast<double>(st.ops) / 20.0)
        << "slot " << s;
  }
}

TEST(Runner, ThroughputUsesVirtualTime) {
  BenchConfig cfg = quiet_config();
  RunStats st = run_workload(cfg, [](tsx::Ctx& ctx) -> locks::RegionResult {
    ctx.engine().compute(ctx, 340);  // 100 ns at 3.4 GHz
    return {.speculative = true, .attempts = 1};
  });
  // 4 threads x 10M ops/s.
  EXPECT_NEAR(st.throughput(), 4e7, 4e6);
}

TEST(Report, TableFormatsRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  // Smoke only: printing must not crash and fmt helpers behave.
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_int(12345), "12345");
}

TEST(Report, CsvEscapesNothingButPrints) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print_csv(f);
  std::rewind(f);
  char buf[64] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "x,y\n");
  std::fclose(f);
}

TEST(Runner, EnvScaleDefaultsToOne) {
  EXPECT_GT(env_duration_scale(), 0.0);
}

// Regression: env_duration_scale used atof, so malformed or zero
// ELISION_BENCH_SCALE silently became 1.0 with no hint ("2,5", "1.5x" and
// "nan" all parsed as valid-ish). It must accept exactly positive finite
// numbers (with trailing whitespace) and fall back to 1.0 otherwise.
TEST(Runner, EnvScaleParsesStrictly) {
  const char* kVar = "ELISION_BENCH_SCALE";
  struct Case {
    const char* value;
    double expect;
  };
  const Case cases[] = {
      {"2.5", 2.5},      {"0.25", 0.25},   {"1e1", 10.0},
      {" 3 ", 3.0},      // strtod skips leading, we skip trailing space
      {"0", 1.0},        // zero would hang benches forever
      {"-2", 1.0},       {"abc", 1.0},     {"1.5x", 1.0},  // trailing garbage
      {"2,5", 1.0},      {"inf", 1.0},     {"nan", 1.0},
      {"", 1.0},
  };
  for (const auto& c : cases) {
    ASSERT_EQ(setenv(kVar, c.value, 1), 0);
    EXPECT_DOUBLE_EQ(env_duration_scale(), c.expect)
        << "ELISION_BENCH_SCALE=\"" << c.value << "\"";
  }
  ASSERT_EQ(unsetenv(kVar), 0);
  EXPECT_DOUBLE_EQ(env_duration_scale(), 1.0);
}

}  // namespace
}  // namespace elision::harness
