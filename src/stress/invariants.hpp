// Invariant checkers for the schedule-exploration stress subsystem.
//
// All checker state is host-side: it is invisible to the simulated cache-
// coherence fabric (no Shared<T>), costs no virtual time, and therefore
// cannot perturb the very interleavings it is checking. The price is that
// checkers must be careful about speculative execution: a transactional
// body may run, be rolled back, and run again, so host-side counters are
// only touched from non-transactional executions (which never roll back).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "tsx/tx_context.hpp"

namespace elision::stress {

// Mutual exclusion: at most one thread may be inside a critical section
// *non-speculatively* per lock. Speculative (transactional) executions
// legitimately overlap — the TM layer arbitrates them and rolls losers
// back — so only non-transactional occupancy counts. Scope a Guard over the
// critical-section body:
//
//   cs.run(ctx, [&] {
//     MutualExclusionChecker::Guard g(checker, ctx);
//     ... body ...
//   });
class MutualExclusionChecker {
 public:
  // Counts the enclosing scope as a non-speculative critical-section
  // occupancy unless the thread is in a transaction. The decision is
  // latched at construction: an abort can only unwind a *transactional*
  // scope (never counted), so a counted scope always runs its destructor
  // exactly once.
  class Guard {
   public:
    Guard(MutualExclusionChecker& checker, tsx::Ctx& ctx)
        : checker_(checker), counted_(!ctx.in_tx()) {
      if (counted_ && ++checker_.inside_ > 1) ++checker_.violations_;
    }
    ~Guard() {
      if (counted_) --checker_.inside_;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    MutualExclusionChecker& checker_;
    const bool counted_;
  };

  std::uint64_t violations() const { return violations_; }
  void reset() {
    inside_ = 0;
    violations_ = 0;
  }

 private:
  int inside_ = 0;
  std::uint64_t violations_ = 0;
};

// Virtual-time livelock/starvation watchdog. Feed it every region
// completion (thread id + the completing thread's virtual clock); it flags
// any thread that went `gap_cycles` of simulated time without completing a
// region while the rest of the system completed at least `min_other_ops`
// regions — i.e. the thread was starved, not the system idle.
class StarvationWatchdog {
 public:
  StarvationWatchdog(int n_threads, std::uint64_t gap_cycles,
                     std::uint64_t min_other_ops)
      : gap_cycles_(gap_cycles),
        min_other_ops_(min_other_ops),
        threads_(static_cast<std::size_t>(n_threads)) {}

  void note_completion(int tid, std::uint64_t now) {
    ELISION_CHECK(tid >= 0 &&
                  static_cast<std::size_t>(tid) < threads_.size());
    auto& t = threads_[static_cast<std::size_t>(tid)];
    check_gap(tid, t, now);
    ++total_ops_;
    t.last_completion = now;
    t.ops_at_last = total_ops_;
  }

  // Call once after the run with the final virtual time: a thread that fell
  // silent and never completed again is starvation too.
  void finish(std::uint64_t end_time) {
    for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
      check_gap(static_cast<int>(tid), threads_[tid], end_time);
    }
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  struct PerThread {
    std::uint64_t last_completion = 0;
    std::uint64_t ops_at_last = 0;
  };

  void check_gap(int tid, const PerThread& t, std::uint64_t now) {
    const std::uint64_t gap = now - t.last_completion;
    const std::uint64_t other_ops = total_ops_ - t.ops_at_last;
    if (gap > gap_cycles_ && other_ops >= min_other_ops_) {
      violations_.push_back(
          "thread " + std::to_string(tid) + " completed nothing for " +
          std::to_string(gap) + " cycles while " +
          std::to_string(other_ops) + " other completions went through");
    }
  }

  const std::uint64_t gap_cycles_;
  const std::uint64_t min_other_ops_;
  std::vector<PerThread> threads_;
  std::uint64_t total_ops_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace elision::stress
