// A miniature key-value store service: GET / PUT / DELETE / RANGE-COUNT
// over a red-black tree index and a hash-table value store, all behind one
// global lock — the coarse-grained design the paper argues you can keep.
//
// Shows how to structure a real component around the library: a KvStore
// class owning its lock and scheme, with the elision machinery hidden
// behind its API.
#include <cstdio>

#include "ds/hashtable.hpp"
#include "ds/rbtree.hpp"
#include "harness/runner.hpp"
#include "locks/schemes.hpp"
#include "locks/ttas_lock.hpp"

using namespace elision;

namespace {

class KvStore {
 public:
  explicit KvStore(locks::Scheme scheme)
      : index_(1 << 16), values_(4096, 1 << 16), cs_(locks::ElisionPolicy::from_scheme(scheme), lock_) {}

  void put(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t value) {
    cs_.run(ctx, [&] {
      index_.insert(ctx, key);
      values_.insert_or_assign(ctx, key, value);
    });
  }

  bool get(tsx::Ctx& ctx, std::uint64_t key, std::uint64_t* out) {
    bool found = false;
    cs_.run(ctx, [&] { found = values_.lookup(ctx, key, out); });
    return found;
  }

  bool erase(tsx::Ctx& ctx, std::uint64_t key) {
    bool erased = false;
    cs_.run(ctx, [&] {
      erased = index_.erase(ctx, key);
      if (erased) values_.erase(ctx, key);
    });
    return erased;
  }

  std::size_t unsafe_size() const { return index_.unsafe_size(); }
  bool unsafe_consistent() const {
    return index_.unsafe_size() == values_.unsafe_size() &&
           index_.unsafe_validate();
  }

 private:
  ds::RbTree index_;
  ds::HashTable values_;
  locks::TtasLock lock_;
  locks::CriticalSection<locks::TtasLock> cs_;
};

void serve(locks::Scheme scheme) {
  KvStore store(scheme);
  harness::BenchConfig cfg;
  cfg.threads = 8;
  cfg.duration_sec = 0.002;
  const auto stats = harness::run_workload(cfg, [&](tsx::Ctx& ctx) {
    auto& rng = ctx.thread().rng();
    const std::uint64_t key = rng.next_below(8192);
    const auto dice = rng.next_below(100);
    if (dice < 10) {
      store.put(ctx, key, key * 3);
    } else if (dice < 15) {
      store.erase(ctx, key);
    } else {
      std::uint64_t v;
      if (store.get(ctx, key, &v) && v != key * 3) {
        std::fprintf(stderr, "CORRUPTION: %lu -> %lu\n",
                     static_cast<unsigned long>(key),
                     static_cast<unsigned long>(v));
      }
    }
    return locks::RegionResult{.speculative = true, .attempts = 1};
  });
  std::printf("  %-12s %8.2f Mreq/s   entries %zu   consistent %s\n",
              locks::scheme_name(scheme), stats.throughput() / 1e6,
              store.unsafe_size(),
              store.unsafe_consistent() ? "yes" : "NO — BUG!");
}

}  // namespace

int main() {
  std::printf("Mini KV store (tree index + hash values, one lock), 8 threads:\n\n");
  for (const auto scheme :
       {locks::Scheme::kStandard, locks::Scheme::kHle,
        locks::Scheme::kHleScm, locks::Scheme::kOptSlr}) {
    serve(scheme);
  }
  return 0;
}
