# Empty compiler generated dependencies file for elision_harness.
# This may be replaced when dependencies are built.
