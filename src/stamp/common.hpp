// Shared infrastructure of the STAMP-mini suite (Sec. 5.3).
//
// The paper evaluates seven STAMP configurations (genome, intruder,
// kmeans-high, kmeans-low, ssca2, vacation-high, vacation-low) after
// replacing every transaction with a critical section on one global lock.
// These re-implementations reproduce each application's *transactional
// character* — transaction length, read/write-set size, contention level —
// on the simulator's shared memory, which is what the lock-elision study
// depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "locks/schemes.hpp"
#include "sim/machine_config.hpp"
#include "tsx/config.hpp"

namespace elision::stamp {

enum class LockKind { kTtas, kMcs };

inline const char* lock_name(LockKind k) {
  return k == LockKind::kTtas ? "TTAS" : "MCS";
}

struct StampConfig {
  int threads = 8;
  locks::Scheme scheme = locks::Scheme::kStandard;
  LockKind lock = LockKind::kTtas;
  sim::MachineConfig machine;
  tsx::TsxConfig tsx;
  std::uint64_t seed = 12345;
  double scale = 1.0;  // problem-size multiplier
};

struct StampResult {
  std::string app;
  std::uint64_t checksum = 0;       // workload result (deterministic for all
                                    // apps except vacation, whose outcome is
                                    // inherently interleaving-dependent)
  bool invariants_ok = true;        // app-specific consistency checks passed
  std::uint64_t elapsed_cycles = 0; // virtual completion time
  std::uint64_t ops = 0;            // critical sections executed
  std::uint64_t nonspec_ops = 0;
  std::uint64_t attempts = 0;

  double seconds(double ghz) const { return elapsed_cycles / (ghz * 1e9); }
  double attempts_per_op() const {
    return ops > 0 ? static_cast<double>(attempts) / ops : 0.0;
  }
  double nonspec_fraction() const {
    return ops > 0 ? static_cast<double>(nonspec_ops) / ops : 0.0;
  }
};

// Sense-reversing barrier on simulated shared memory; the spin runs outside
// any transaction.
class SimBarrier {
 public:
  explicit SimBarrier(int parties) : parties_(parties) {}

  void wait(tsx::Ctx& ctx) {
    const std::uint64_t my_sense = 1 - sense_.load(ctx);
    if (count_.fetch_add(ctx, 1) + 1 == static_cast<std::uint64_t>(parties_)) {
      count_.store(ctx, 0);
      sense_.store(ctx, my_sense);
    } else {
      while (sense_.load(ctx) != my_sense) ctx.engine().pause(ctx);
    }
  }

 private:
  int parties_;
  support::CacheAligned<tsx::Shared<std::uint64_t>> count_storage_;
  support::CacheAligned<tsx::Shared<std::uint64_t>> sense_storage_;
  tsx::Shared<std::uint64_t>& count_ = count_storage_.value;
  tsx::Shared<std::uint64_t>& sense_ = sense_storage_.value;
};

// Per-thread accounting accumulated into a StampResult.
struct OpTally {
  std::uint64_t ops = 0, nonspec = 0, attempts = 0;
  void add(const locks::RegionResult& r) {
    ++ops;
    if (!r.speculative) ++nonspec;
    attempts += static_cast<std::uint64_t>(r.attempts);
  }
};

// --- the seven evaluated configurations ---
StampResult run_genome(const StampConfig& cfg);
// Extension beyond the thesis's evaluation: the long-transaction router.
StampResult run_labyrinth(const StampConfig& cfg);
StampResult run_intruder(const StampConfig& cfg);
StampResult run_kmeans(const StampConfig& cfg, bool high_contention);
StampResult run_ssca2(const StampConfig& cfg);
StampResult run_vacation(const StampConfig& cfg, bool high_contention);

// Runs an app by name: genome, intruder, kmeans_high, kmeans_low, ssca2,
// vacation_high, vacation_low.
StampResult run_app(const std::string& name, const StampConfig& cfg);

// One (app, configuration) cell of a STAMP sweep.
struct StampJob {
  std::string app;
  StampConfig cfg;
};

// Runs every job — each an independent simulation — fanning them out over
// up to `host_threads` host threads (support/parallel.hpp), and returns the
// results in job order, so output is byte-identical to running the jobs
// sequentially (host_threads <= 1 does exactly that, inline).
std::vector<StampResult> run_apps(const std::vector<StampJob>& jobs,
                                  int host_threads);

inline constexpr const char* kAppNames[] = {
    "genome",     "intruder",      "kmeans_high", "kmeans_low",
    "ssca2",      "vacation_high", "vacation_low",
};

// The evaluated seven plus the labyrinth extension.
inline constexpr const char* kAllAppNames[] = {
    "genome",     "intruder",      "kmeans_high", "kmeans_low",
    "ssca2",      "vacation_high", "vacation_low", "labyrinth",
};

}  // namespace elision::stamp
