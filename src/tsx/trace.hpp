// Execution tracing: an optional, zero-cost-when-disabled event log of
// transactional activity (begin/commit/abort with cause and conflict
// location), in virtual time. Used by the timeline experiments, by tests
// that assert on event ordering, and for debugging elision pathologies —
// precisely the visibility real HLE hardware denies (Ch. 3 Remark: "it is
// not possible to count aborts when using Haswell's HLE").
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "support/align.hpp"
#include "tsx/abort.hpp"

namespace elision::tsx {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBegin,   // transaction started (RTM xbegin or HLE elision)
    kCommit,  // transaction committed
    kAbort,   // transaction aborted (cause + conflict line/thread if any)
  };

  std::uint64_t timestamp = 0;  // virtual cycles
  int thread = -1;
  Kind kind = Kind::kBegin;
  AbortCause cause = AbortCause::kNone;
  support::LineId conflict_line = 0;
  int conflict_thread = -1;
};

inline const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::kBegin: return "begin";
    case TraceEvent::Kind::kCommit: return "commit";
    case TraceEvent::Kind::kAbort: return "abort";
  }
  return "?";
}

class Trace {
 public:
  void record(const TraceEvent& e) { events_.push_back(e); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  // Events of one kind, optionally restricted to a thread (-1 = all).
  std::size_t count(TraceEvent::Kind kind, int thread = -1) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind && (thread < 0 || e.thread == thread)) ++n;
    }
    return n;
  }

  std::size_t count_aborts(AbortCause cause) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::kAbort && e.cause == cause) ++n;
    }
    return n;
  }

  void dump_csv(std::FILE* out) const {
    std::fprintf(out, "timestamp,thread,kind,cause,conflict_line,conflict_thread\n");
    for (const auto& e : events_) {
      std::fprintf(out, "%llu,%d,%s,%s,%llx,%d\n",
                   static_cast<unsigned long long>(e.timestamp), e.thread,
                   to_string(e.kind), to_string(e.cause),
                   static_cast<unsigned long long>(e.conflict_line),
                   e.conflict_thread);
    }
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace elision::tsx
